// Package datalog implements a small deductive database over BDD-backed
// relations — a from-scratch substitute for the bddbddb system the
// paper's RegionWiz prototype used to solve its analysis rules
// (Section 5.1). Relations range over named logical domains; each
// relation attribute is bound to a numbered physical instance of its
// domain (in bddbddb terms, V0, V1, H0, ...). Rules are Horn clauses
// with optional negated body atoms (negation is stratified by the
// caller: a negated relation must be fully computed before rules that
// negate it run).
package datalog

import (
	"fmt"

	"repro/internal/bdd"
)

// Program owns the BDD manager, the logical domains, and the relations
// of one analysis run.
type Program struct {
	M       *bdd.Manager
	domains map[string]*LogicalDomain
	order   []*LogicalDomain
	rels    map[string]*Relation
	// renames caches the per-(src,dst) rename apparatus (relation.go);
	// env is the reusable rule-evaluation scratch (rule.go).
	renames map[renameKey]renameOps
	env     *evalEnv
	// fixpointRoots holds the running fixpoint's delta maps so that
	// mid-derivation GC safe points (lifecycle.go) can pin them along
	// with the derivation's own intermediates.
	fixpointRoots []map[*Relation]bdd.Node
}

// NewProgram returns an empty program with a default-sized BDD
// manager.
func NewProgram() *Program { return NewProgramConfig(bdd.Config{}) }

// NewProgramConfig returns an empty program whose BDD manager is sized
// by cfg (the zero value selects the kernel defaults). Kernel sizing
// never changes solve results, only time and memory.
func NewProgramConfig(cfg bdd.Config) *Program {
	return &Program{
		M:       bdd.NewWith(cfg),
		domains: make(map[string]*LogicalDomain),
		rels:    make(map[string]*Relation),
		renames: make(map[renameKey]renameOps),
	}
}

// LogicalDomain is a named finite domain (e.g. the paper's C, F, N
// domains for contexts, functions, and field offsets). Physical
// instances (C0, C1, ...) are allocated on demand.
type LogicalDomain struct {
	p    *Program
	Name string
	Size uint64

	insts   []*bdd.Domain
	scratch []*bdd.Domain
}

// Domain declares (or retrieves) a logical domain with the given size.
// Redeclaring an existing name with a different size is an error.
func (p *Program) Domain(name string, size uint64) *LogicalDomain {
	if d, ok := p.domains[name]; ok {
		if d.Size != size {
			panic(fmt.Sprintf("datalog: domain %s redeclared with size %d (was %d)", name, size, d.Size))
		}
		return d
	}
	d := &LogicalDomain{p: p, Name: name, Size: size}
	p.domains[name] = d
	p.order = append(p.order, d)
	return d
}

// instanceBatch is how many instances of a domain are allocated at
// once, bit-interleaved. Interleaving the instances of one logical
// domain keeps the equality/rename BDDs linear in the bit count —
// without it they are exponential, the variable-order effect the
// paper's Section 6.3 reports for bddbddb.
const instanceBatch = 4

// ensure grows both pools so index i is valid in each. Schema and
// scratch instances are allocated in one combined interleaved batch:
// rule evaluation renames columns between the two pools, so every
// (schema, scratch) pair must be pairwise interleaved.
func (d *LogicalDomain) ensure(i int) {
	for len(d.insts) <= i || len(d.scratch) <= i {
		names := make([]string, 2*instanceBatch)
		sizes := make([]uint64, 2*instanceBatch)
		for k := 0; k < instanceBatch; k++ {
			names[k] = fmt.Sprintf("%s%d", d.Name, len(d.insts)+k)
			names[instanceBatch+k] = fmt.Sprintf("%s#s%d", d.Name, len(d.scratch)+k)
			sizes[k] = d.Size
			sizes[instanceBatch+k] = d.Size
		}
		ds := d.p.M.NewInterleavedDomains(names, sizes)
		d.insts = append(d.insts, ds[:instanceBatch]...)
		d.scratch = append(d.scratch, ds[instanceBatch:]...)
	}
}

// Instance returns the i-th physical instance of the domain,
// allocating variables on demand in interleaved batches.
func (d *LogicalDomain) Instance(i int) *bdd.Domain {
	d.ensure(i)
	return d.insts[i]
}

// scratchInstance returns the i-th scratch instance, the pool holding
// rule-evaluation variables.
func (d *LogicalDomain) scratchInstance(i int) *bdd.Domain {
	d.ensure(i)
	return d.scratch[i]
}

// Attr names one attribute of a relation: a logical domain plus the
// physical instance index the relation stores that column in.
type Attr struct {
	Dom  *LogicalDomain
	Inst int
}

// A convenience constructor: domain d, instance i.
func (d *LogicalDomain) At(i int) Attr { return Attr{Dom: d, Inst: i} }

// Relation declares (or retrieves) a relation with the given schema.
func (p *Program) Relation(name string, attrs ...Attr) *Relation {
	if r, ok := p.rels[name]; ok {
		if len(r.attrs) != len(attrs) {
			panic(fmt.Sprintf("datalog: relation %s redeclared with different arity", name))
		}
		for i := range attrs {
			if r.attrs[i] != attrs[i] {
				panic(fmt.Sprintf("datalog: relation %s redeclared with different schema", name))
			}
		}
		return r
	}
	seen := make(map[*bdd.Domain]bool)
	for _, a := range attrs {
		inst := a.Dom.Instance(a.Inst)
		if seen[inst] {
			panic(fmt.Sprintf("datalog: relation %s repeats physical instance %s", name, inst.Name()))
		}
		seen[inst] = true
	}
	r := &Relation{p: p, Name: name, attrs: attrs, node: bdd.False}
	p.rels[name] = r
	return r
}

// Lookup returns a previously declared relation, or nil.
func (p *Program) Lookup(name string) *Relation {
	return p.rels[name]
}

// NodeCount reports the size of the program's BDD node table — the
// shared cost metric of every relation the program holds (the
// "number of BDD nodes" the paper's Section 6.3 discussion tracks
// when comparing variable orders).
func (p *Program) NodeCount() int { return p.M.NumNodes() }

// TupleCount sums the tuple counts of every declared relation. Unlike
// NodeCount it measures logical size: two relations sharing BDD
// structure count their tuples separately.
func (p *Program) TupleCount() uint64 {
	var n uint64
	for _, r := range p.rels {
		n += r.Count()
	}
	return n
}

// RelationCount reports how many relations are declared.
func (p *Program) RelationCount() int { return len(p.rels) }
