package datalog

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSemiNaiveMatchesNaiveClosure(t *testing.T) {
	build := func() (*Program, *Relation, *Relation) {
		p := NewProgram()
		d := p.Domain("N", 32)
		edge := p.Relation("edge", d.At(0), d.At(1))
		path := p.Relation("path", d.At(0), d.At(1))
		return p, edge, path
	}
	addEdges := func(edge *Relation, seed int64) {
		r := rand.New(rand.NewSource(seed))
		for k := 0; k < 40; k++ {
			edge.Add(uint64(r.Intn(32)), uint64(r.Intn(32)))
		}
	}
	rules := func(edge, path *Relation) []*Rule {
		return []*Rule{
			NewRule(T(path, "x", "y"), T(edge, "x", "y")),
			NewRule(T(path, "x", "z"), T(path, "x", "y"), T(edge, "y", "z")),
		}
	}
	for seed := int64(0); seed < 10; seed++ {
		p1, e1, path1 := build()
		addEdges(e1, seed)
		p1.Solve(context.Background(), rules(e1, path1), 0)

		p2, e2, path2 := build()
		addEdges(e2, seed)
		p2.SolveSemiNaive(context.Background(), rules(e2, path2), 0)

		t1, t2 := path1.Tuples(), path2.Tuples()
		if len(t1) != len(t2) {
			t.Fatalf("seed %d: naive %d tuples, semi-naive %d", seed, len(t1), len(t2))
		}
		for i := range t1 {
			if t1[i][0] != t2[i][0] || t1[i][1] != t2[i][1] {
				t.Fatalf("seed %d: tuple %d differs", seed, i)
			}
		}
	}
}

func TestSemiNaiveQuadraticRule(t *testing.T) {
	// Two recursive atoms in one rule (path ∘ path): the per-atom
	// delta variants must still reach the full closure.
	p := NewProgram()
	d := p.Domain("N", 64)
	edge := p.Relation("edge", d.At(0), d.At(1))
	path := p.Relation("path", d.At(0), d.At(1))
	for i := uint64(0); i < 40; i++ {
		edge.Add(i, i+1)
	}
	p.SolveSemiNaive(context.Background(), []*Rule{
		NewRule(T(path, "x", "y"), T(edge, "x", "y")),
		NewRule(T(path, "x", "z"), T(path, "x", "y"), T(path, "y", "z")),
	}, 0)
	if got := path.Count(); got != 41*40/2 {
		t.Fatalf("closure count = %d, want %d", got, 41*40/2)
	}
}

func TestSemiNaiveNonRecursiveRunsOnce(t *testing.T) {
	p := NewProgram()
	d := p.Domain("N", 8)
	a := p.Relation("a", d.At(0))
	b := p.Relation("b", d.At(0))
	a.Add(1)
	a.Add(2)
	rounds, _ := p.SolveSemiNaive(context.Background(), []*Rule{
		NewRule(T(b, "x"), T(a, "x")),
	}, 0)
	// Round 1 derives everything; round 2 sees the delta but the rule
	// has no recursive atom, so nothing re-evaluates and it quiesces.
	if rounds > 2 {
		t.Fatalf("non-recursive rule took %d rounds", rounds)
	}
	if b.Count() != 2 {
		t.Fatalf("b has %d tuples", b.Count())
	}
}

func TestSemiNaiveRejectsSameStratumNegation(t *testing.T) {
	p := NewProgram()
	d := p.Domain("N", 8)
	a := p.Relation("a", d.At(0))
	b := p.Relation("b", d.At(0))
	a.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("same-stratum negation not rejected")
		}
	}()
	p.SolveSemiNaive(context.Background(), []*Rule{
		NewRule(T(b, "x"), T(a, "x"), N(b, "x")),
	}, 0)
}

func TestSemiNaiveWithStratifiedNegation(t *testing.T) {
	// Negation of an earlier stratum is fine.
	p := NewProgram()
	d := p.Domain("N", 8)
	node := p.Relation("node", d.At(0))
	edge := p.Relation("edge", d.At(0), d.At(1))
	reach := p.Relation("reach", d.At(0))
	dead := p.Relation("dead", d.At(0))
	for i := uint64(0); i < 6; i++ {
		node.Add(i)
	}
	edge.Add(0, 1)
	edge.Add(1, 2)
	p.SolveSemiNaive(context.Background(), []*Rule{
		NewRule(T(reach, "x"), T(node, "x").Bind(0, 0)),
		NewRule(T(reach, "y"), T(reach, "x"), T(edge, "x", "y")),
	}, 0)
	p.SolveSemiNaive(context.Background(), []*Rule{
		NewRule(T(dead, "x"), T(node, "x"), N(reach, "x")),
	}, 0)
	if dead.Count() != 3 { // 3, 4, 5
		t.Fatalf("dead = %v", dead.Tuples())
	}
}

func TestPropertySemiNaiveEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 16
		mk := func() (*Program, *Relation, *Relation, *Relation) {
			p := NewProgram()
			d := p.Domain("N", n)
			e := p.Relation("e", d.At(0), d.At(1))
			q := p.Relation("q", d.At(0), d.At(1))
			s := p.Relation("s", d.At(0))
			return p, e, q, s
		}
		p1, e1, q1, s1 := mk()
		p2, e2, q2, s2 := mk()
		for k := 0; k < 25; k++ {
			x, y := uint64(r.Intn(n)), uint64(r.Intn(n))
			e1.Add(x, y)
			e2.Add(x, y)
		}
		mkRules := func(e, q, s *Relation) []*Rule {
			return []*Rule{
				NewRule(T(q, "x", "y"), T(e, "x", "y")),
				NewRule(T(q, "x", "z"), T(q, "x", "y"), T(q, "y", "z")),
				NewRule(T(s, "x"), T(q, "x", "x")),
			}
		}
		p1.Solve(context.Background(), mkRules(e1, q1, s1), 0)
		p2.SolveSemiNaive(context.Background(), mkRules(e2, q2, s2), 0)
		a, b := q1.Tuples(), q2.Tuples()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
				return false
			}
		}
		sa, sb := s1.Tuples(), s2.Tuples()
		if len(sa) != len(sb) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
