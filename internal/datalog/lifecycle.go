package datalog

import "repro/internal/bdd"

// Kernel lifecycle: the datalog layer is a bdd kernel client, so it
// declares its roots. A program's live set at a safe point is exactly
// the contents of its relations plus the cached rename apparatus
// (relation.go) — everything else the kernel holds is operation
// intermediates that no future call can reach. Solver fixpoints add
// their semi-naive deltas for the duration of a round and release them
// at the round boundary by simply not pinning the previous round's
// deltas again.

// pinRoots pins every node the program can reach again — relation
// contents, the rename equality/cube cache, and extra — and returns
// the matching release. Pin order is irrelevant (marking is
// order-independent), so ranging over maps here is deterministic in
// effect.
func (p *Program) pinRoots(extra []bdd.Node) (release func()) {
	m := p.M
	pinned := make([]bdd.Node, 0, len(p.rels)+2*len(p.renames)+len(extra))
	pin := func(n bdd.Node) {
		m.Ref(n)
		pinned = append(pinned, n)
	}
	for _, r := range p.rels {
		pin(r.node)
	}
	for _, ops := range p.renames {
		pin(ops.eq)
		pin(ops.cube)
	}
	for _, n := range extra {
		pin(n)
	}
	return func() {
		for _, n := range pinned {
			m.Deref(n)
		}
	}
}

// CollectIfPressured answers kernel GC pressure at a program safe
// point: it pins the program's roots (plus extra nodes the caller
// still needs, e.g. in-flight deltas), collects, and releases. It
// reports whether a collection ran. Callers must not hold any other
// un-pinned node across this call.
func (p *Program) CollectIfPressured(extra ...bdd.Node) bool {
	if !p.M.GCPressure() {
		return false
	}
	release := p.pinRoots(extra)
	p.M.Collect()
	release()
	return true
}

// collectAfterRound is the solver-internal safe point at a fixpoint
// round boundary: the live set is the relations plus the current
// deltas; the previous round's deltas and intermediates are garbage.
func (p *Program) collectAfterRound(delta map[*Relation]bdd.Node) {
	p.collectMidRound(delta)
}

// collectMidRound is the solver-internal safe point between rule
// applications inside a fixpoint round. The live set is the relations
// plus every in-flight delta map — the round's input deltas and the
// next-round deltas under construction. Rule intermediates (the
// join/projection chain inside derive) are dead between rules, and
// they are where the kernel's node peak comes from, so answering
// pressure here rather than only at round boundaries is what lets GC
// actually lower the peak.
func (p *Program) collectMidRound(deltas ...map[*Relation]bdd.Node) {
	if !p.M.GCPressure() {
		return
	}
	var extra []bdd.Node
	for _, dm := range deltas {
		for _, d := range dm {
			extra = append(extra, d)
		}
	}
	p.CollectIfPressured(extra...)
}

// deriveSafePoint answers GC pressure between operations inside a rule
// derivation. live lists the derivation's in-flight intermediates (the
// accumulator and any constraint under construction); the enclosing
// fixpoint's delta maps — live in the caller across the derive call —
// are registered in p.fixpointRoots and pinned too. The kernel's node
// peak forms inside a single rule's join chain, so this is the safe
// point that lets GC actually lower it.
func (p *Program) deriveSafePoint(live ...bdd.Node) {
	if !p.M.GCPressure() {
		return
	}
	extra := make([]bdd.Node, 0, len(live)+8)
	extra = append(extra, live...)
	for _, dm := range p.fixpointRoots {
		for _, d := range dm {
			extra = append(extra, d)
		}
	}
	p.CollectIfPressured(extra...)
}

// Reorder runs one sifting pass over the manager's variable order with
// the program's roots pinned (a collection runs first; see
// bdd.Manager.Reorder). Relation contents and the cached rename
// apparatus survive by node identity — the kernel rewrites nodes in
// place — so nothing in the program needs rebuilding. It returns the
// number of adjacent-level swaps.
func (p *Program) Reorder() int {
	release := p.pinRoots(nil)
	swaps := p.M.Reorder()
	release()
	return swaps
}

// ReorderIfEnabled runs Reorder when the manager was configured with
// Config.Reorder — the between-strata hook solver drivers call.
func (p *Program) ReorderIfEnabled() int {
	if !p.M.Config().Reorder {
		return 0
	}
	return p.Reorder()
}
