package datalog

import (
	"context"
	"reflect"
	"testing"
)

// buildRegionProgram declares the paper's region-strata schema over a
// small synthetic region tree and loads the same base facts into the
// BDD relations and an Explicit engine.
//
// Tree (parent edges): 1->0, 2->1, 3->2, 4->2, 5->4 — a chain with a
// branch at 2, deep enough that transitive closure takes several
// rounds (the cutoff test needs the cap to actually bite).
func buildRegionProgram(t *testing.T) (*Program, *Explicit, map[string]*Relation) {
	t.Helper()
	p := NewProgram()
	R := p.Domain("R", 6)
	rels := map[string]*Relation{
		"region":     p.Relation("region", R.At(0)),
		"parent":     p.Relation("parent", R.At(0), R.At(1)),
		"leq":        p.Relation("leq", R.At(0), R.At(1)),
		"regionPair": p.Relation("regionPair", R.At(0), R.At(1)),
	}
	e := NewExplicit(p)
	parents := map[uint64]uint64{1: 0, 2: 1, 3: 2, 4: 2, 5: 4}
	for i := uint64(0); i < 6; i++ {
		rels["region"].Add(i)
		e.Add(rels["region"], i)
	}
	for c, par := range parents {
		rels["parent"].Add(c, par)
		e.Add(rels["parent"], c, par)
	}
	return p, e, rels
}

func regionRules(rels map[string]*Relation) (leqRules, pairRules []*Rule) {
	leqRules = []*Rule{
		NewRule(T(rels["leq"], "x", "x"), T(rels["region"], "x")),
		NewRule(T(rels["leq"], "x", "y"), T(rels["parent"], "x", "y")),
		NewRule(T(rels["leq"], "x", "z"), T(rels["leq"], "x", "y"), T(rels["parent"], "y", "z")),
	}
	pairRules = []*Rule{
		NewRule(T(rels["regionPair"], "x", "y"),
			T(rels["region"], "x"), T(rels["region"], "y"), N(rels["leq"], "x", "y")),
	}
	return
}

// TestExplicitMatchesBDD solves the paper's region strata on both
// engines from identical base facts and requires tuple-identical
// results — the contract that makes explicit-engine replay a valid
// oracle for BDD-backend reports.
func TestExplicitMatchesBDD(t *testing.T) {
	p, e, rels := buildRegionProgram(t)
	leqRules, pairRules := regionRules(rels)

	p.SolveSemiNaive(context.Background(), leqRules, 0)
	e.SolveSemiNaive(leqRules, 0)
	p.Solve(context.Background(), pairRules, 0)
	e.Solve(pairRules, 0)

	for _, name := range []string{"region", "parent", "leq", "regionPair"} {
		want := rels[name].Tuples()
		got := e.Tuples(rels[name])
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: BDD %v, explicit %v", name, want, got)
		}
	}
	if e.Count(rels["leq"]) == 0 || e.Count(rels["regionPair"]) == 0 {
		t.Fatalf("expected non-trivial solve: leq=%d regionPair=%d",
			e.Count(rels["leq"]), e.Count(rels["regionPair"]))
	}
}

// TestExplicitWitnesses checks the provenance contract: base facts have
// no witness; derived facts carry the rule that first produced them
// with ground premises, including absence premises for negated atoms.
func TestExplicitWitnesses(t *testing.T) {
	_, e, rels := buildRegionProgram(t)
	leqRules, pairRules := regionRules(rels)
	e.SolveSemiNaive(leqRules, 0)
	e.Solve(pairRules, 0)

	if _, ok := e.WitnessOf(rels["region"], 3); ok {
		t.Errorf("base fact region(3) should have no witness")
	}
	// leq(3,3) fires the reflexivity rule.
	w, ok := e.WitnessOf(rels["leq"], 3, 3)
	if !ok {
		t.Fatalf("no witness for leq(3,3)")
	}
	if w.Rule != "leq:-region" {
		t.Errorf("leq(3,3) rule = %q, want leq:-region", w.Rule)
	}
	if len(w.Premises) != 1 || w.Premises[0].String() != "region(3)" {
		t.Errorf("leq(3,3) premises = %v", w.Premises)
	}
	// leq(3,0) needs the transitive rule: 3 -> 1 -> 0.
	w, ok = e.WitnessOf(rels["leq"], 3, 0)
	if !ok {
		t.Fatalf("no witness for leq(3,0)")
	}
	if w.Rule != "leq:-leq,parent" {
		t.Errorf("leq(3,0) rule = %q, want leq:-leq,parent", w.Rule)
	}
	wantPrem := []string{"leq(3,1)", "parent(1,0)"}
	if len(w.Premises) != 2 || w.Premises[0].String() != wantPrem[0] || w.Premises[1].String() != wantPrem[1] {
		t.Errorf("leq(3,0) premises = %v, want %v", w.Premises, wantPrem)
	}
	// regionPair(3,4): siblings, neither related; the witness records
	// the absence premise !leq(3,4).
	w, ok = e.WitnessOf(rels["regionPair"], 3, 4)
	if !ok {
		t.Fatalf("no witness for regionPair(3,4)")
	}
	if w.Rule != "regionPair:-region,region,!leq" {
		t.Errorf("regionPair(3,4) rule = %q", w.Rule)
	}
	if len(w.Premises) != 3 {
		t.Fatalf("regionPair(3,4) premises = %v", w.Premises)
	}
	if got := w.Premises[2]; !got.Neg || got.String() != "!leq(3,4)" {
		t.Errorf("negated premise = %v, want !leq(3,4)", got)
	}
	// Witnesses only exist for facts that hold.
	if _, ok := e.WitnessOf(rels["regionPair"], 3, 0); ok {
		t.Errorf("regionPair(3,0) holds?! leq(3,0) should suppress it")
	}
	if e.Has(rels["regionPair"], 3, 0) {
		t.Errorf("regionPair(3,0) present; expected suppressed by leq(3,0)")
	}
}

// TestExplicitDeterministic runs the same solve twice and requires the
// exact same witnesses — the property explanation byte-determinism
// rests on.
func TestExplicitDeterministic(t *testing.T) {
	_, e1, rels1 := buildRegionProgram(t)
	_, e2, rels2 := buildRegionProgram(t)
	lr1, pr1 := regionRules(rels1)
	lr2, pr2 := regionRules(rels2)
	e1.SolveSemiNaive(lr1, 0)
	e1.Solve(pr1, 0)
	e2.SolveSemiNaive(lr2, 0)
	e2.Solve(pr2, 0)
	for _, tup := range e1.Tuples(rels1["leq"]) {
		w1, ok1 := e1.WitnessOf(rels1["leq"], tup...)
		w2, ok2 := e2.WitnessOf(rels2["leq"], tup...)
		if ok1 != ok2 {
			t.Fatalf("leq%v witness presence differs: %v vs %v", tup, ok1, ok2)
		}
		if !ok1 {
			continue
		}
		if !reflect.DeepEqual(w1, w2) {
			t.Errorf("leq%v witness differs: %+v vs %+v", tup, w1, w2)
		}
	}
}

// TestExplicitCutoff pins the shared maxRounds contract: at most
// maxRounds rounds, fixpoint false exactly when the cap bites, and a
// capped solve is an under-approximation of the full one.
func TestExplicitCutoff(t *testing.T) {
	_, e, rels := buildRegionProgram(t)
	lr, _ := regionRules(rels)
	rounds, fix := e.SolveSemiNaive(lr, 1)
	if rounds != 1 || fix {
		t.Errorf("capped solve: rounds=%d fixpoint=%v, want 1,false", rounds, fix)
	}
	capped := e.Count(rels["leq"])

	_, e2, rels2 := buildRegionProgram(t)
	lr2, _ := regionRules(rels2)
	rounds, fix = e2.SolveSemiNaive(lr2, 0)
	if !fix {
		t.Errorf("uncapped solve did not reach fixpoint")
	}
	if rounds <= 1 {
		t.Errorf("transitive closure of depth-2 tree converged in %d round(s)", rounds)
	}
	if full := e2.Count(rels2["leq"]); capped >= full {
		t.Errorf("capped count %d not < full count %d", capped, full)
	}
}

// TestExplicitWildcardAndConst covers Bind constants and wildcard
// positions, including a wildcard in a negated atom (absence over every
// value, recorded as WildArg).
func TestExplicitWildcardAndConst(t *testing.T) {
	p := NewProgram()
	D := p.Domain("D", 8)
	edge := p.Relation("edge", D.At(0), D.At(1))
	sink := p.Relation("sink", D.At(0))
	fromZero := p.Relation("fromZero", D.At(0))
	e := NewExplicit(p)
	for _, t2 := range [][2]uint64{{0, 1}, {0, 2}, {1, 3}, {2, 2}} {
		edge.Add(t2[0], t2[1])
		e.Add(edge, t2[0], t2[1])
	}
	rules := []*Rule{
		// fromZero(y) :- edge(0, y).
		NewRule(T(fromZero, "y"), T(edge, Wildcard, "y").Bind(0, 0)),
		// sink(x) :- edge(_, x), !edge(x, _).
		NewRule(T(sink, "x"), T(edge, Wildcard, "x"), N(edge, "x", Wildcard)),
	}
	p.Solve(context.Background(), rules, 0)
	e.Solve(rules, 0)
	if !reflect.DeepEqual(e.Tuples(fromZero), fromZero.Tuples()) {
		t.Errorf("fromZero: explicit %v, BDD %v", e.Tuples(fromZero), fromZero.Tuples())
	}
	if !reflect.DeepEqual(e.Tuples(sink), sink.Tuples()) {
		t.Errorf("sink: explicit %v, BDD %v", e.Tuples(sink), sink.Tuples())
	}
	w, ok := e.WitnessOf(sink, 3)
	if !ok {
		t.Fatalf("no witness for sink(3)")
	}
	if len(w.Premises) != 2 || w.Premises[1].String() != "!edge(3,_)" {
		t.Errorf("sink(3) premises = %v, want [..., !edge(3,_)]", w.Premises)
	}
}
