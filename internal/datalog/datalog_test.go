package datalog

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRelationBasics(t *testing.T) {
	p := NewProgram()
	d := p.Domain("D", 16)
	r := p.Relation("edge", d.At(0), d.At(1))
	if !r.Add(1, 2) {
		t.Fatal("first Add reported no change")
	}
	if r.Add(1, 2) {
		t.Fatal("duplicate Add reported change")
	}
	r.Add(2, 3)
	if !r.Has(1, 2) || !r.Has(2, 3) || r.Has(3, 1) {
		t.Fatal("Has mismatch")
	}
	if got := r.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	r.Remove(1, 2)
	if r.Has(1, 2) || r.Count() != 1 {
		t.Fatal("Remove failed")
	}
}

func TestRelationSetOps(t *testing.T) {
	p := NewProgram()
	d := p.Domain("D", 8)
	a := p.Relation("a", d.At(0))
	b := p.Relation("b", d.At(0))
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(3)
	u := p.Relation("u", d.At(0))
	u.UnionWith(a)
	u.UnionWith(b)
	if u.Count() != 3 {
		t.Fatalf("union count = %d, want 3", u.Count())
	}
	u.DifferenceWith(b)
	if u.Count() != 1 || !u.Has(1) {
		t.Fatal("difference wrong")
	}
	i := p.Relation("i", d.At(0))
	i.UnionWith(a)
	i.IntersectWith(b)
	if i.Count() != 1 || !i.Has(2) {
		t.Fatal("intersection wrong")
	}
}

func TestEachAndTuples(t *testing.T) {
	p := NewProgram()
	d := p.Domain("D", 100)
	r := p.Relation("r", d.At(0), d.At(1))
	want := [][]uint64{{0, 99}, {7, 42}, {50, 50}}
	for _, tp := range want {
		r.Add(tp...)
	}
	got := r.Tuples()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tuples = %v, want %v", got, want)
	}
	n := 0
	r.Each(func([]uint64) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop ignored, %d calls", n)
	}
}

func TestTransitiveClosure(t *testing.T) {
	p := NewProgram()
	d := p.Domain("N", 32)
	edge := p.Relation("edge", d.At(0), d.At(1))
	path := p.Relation("path", d.At(0), d.At(1))
	// Chain 0->1->2->...->9 plus a back edge 9->0 (cycle).
	for i := uint64(0); i < 9; i++ {
		edge.Add(i, i+1)
	}
	edge.Add(9, 0)
	rules := []*Rule{
		NewRule(T(path, "x", "y"), T(edge, "x", "y")),
		NewRule(T(path, "x", "z"), T(path, "x", "y"), T(edge, "y", "z")),
	}
	p.Solve(context.Background(), rules, 0)
	// A 10-cycle's closure is complete: 100 pairs.
	if got := path.Count(); got != 100 {
		t.Fatalf("closure of 10-cycle has %d pairs, want 100", got)
	}
}

func TestPropertyClosureMatchesFloydWarshall(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 12
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		p := NewProgram()
		d := p.Domain("N", n)
		edge := p.Relation("edge", d.At(0), d.At(1))
		path := p.Relation("path", d.At(0), d.At(1))
		for k := 0; k < 20; k++ {
			i, j := r.Intn(n), r.Intn(n)
			adj[i][j] = true
			edge.Add(uint64(i), uint64(j))
		}
		p.Solve(context.Background(), []*Rule{
			NewRule(T(path, "x", "y"), T(edge, "x", "y")),
			NewRule(T(path, "x", "z"), T(path, "x", "y"), T(path, "y", "z")),
		}, 0)
		// Floyd-Warshall reference.
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = append([]bool(nil), adj[i]...)
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if path.Has(uint64(i), uint64(j)) != reach[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNegation(t *testing.T) {
	p := NewProgram()
	d := p.Domain("N", 8)
	node := p.Relation("node", d.At(0))
	edge := p.Relation("edge", d.At(0), d.At(1))
	unreachedFrom0 := p.Relation("unreached", d.At(0))
	reach := p.Relation("reach", d.At(0))
	for i := uint64(0); i < 5; i++ {
		node.Add(i)
	}
	edge.Add(0, 1)
	edge.Add(1, 2)
	// 3,4 disconnected.
	p.Solve(context.Background(), []*Rule{
		NewRule(T(reach, "x"), T(node, "x").Bind(0, 0)),
		NewRule(T(reach, "y"), T(reach, "x"), T(edge, "x", "y")),
	}, 0)
	p.Solve(context.Background(), []*Rule{
		NewRule(T(unreachedFrom0, "x"), T(node, "x"), N(reach, "x")),
	}, 0)
	want := [][]uint64{{3}, {4}}
	if got := unreachedFrom0.Tuples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("unreached = %v, want %v", got, want)
	}
}

func TestConstantsAndWildcards(t *testing.T) {
	p := NewProgram()
	d := p.Domain("N", 8)
	f := p.Domain("F", 4)
	call := p.Relation("call", d.At(0), f.At(0), d.At(1))
	callers := p.Relation("callers", d.At(0))
	call.Add(1, 0, 2)
	call.Add(3, 1, 2)
	call.Add(4, 1, 5)
	// callers(x) :- call(x, _, 2).  (who calls node 2, any function)
	p.Solve(context.Background(), []*Rule{
		NewRule(T(callers, "x"), T(call, "x", Wildcard, Wildcard).Bind(2, 2)),
	}, 0)
	want := [][]uint64{{1}, {3}}
	if got := callers.Tuples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("callers = %v, want %v", got, want)
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	p := NewProgram()
	d := p.Domain("N", 8)
	edge := p.Relation("edge", d.At(0), d.At(1))
	self := p.Relation("self", d.At(0))
	edge.Add(1, 1)
	edge.Add(1, 2)
	edge.Add(3, 3)
	p.Solve(context.Background(), []*Rule{
		NewRule(T(self, "x"), T(edge, "x", "x")),
	}, 0)
	want := [][]uint64{{1}, {3}}
	if got := self.Tuples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("self loops = %v, want %v", got, want)
	}
}

func TestJoinAcrossDomains(t *testing.T) {
	p := NewProgram()
	v := p.Domain("V", 16)
	h := p.Domain("H", 16)
	f := p.Domain("FLD", 8)
	// vP(v,h): variable points to heap object. heap(h,f,h2): field f of
	// h points to h2. load: x = y.f => vP(x, h2) if vP(y,h) and
	// heap(h,f,h2). Classic Andersen load rule expressed in datalog.
	vP := p.Relation("vP", v.At(0), h.At(0))
	hP := p.Relation("heap", h.At(0), f.At(0), h.At(1))
	load := p.Relation("load", v.At(0), v.At(1), f.At(0)) // x = y.f
	vP.Add(1, 10)
	hP.Add(10, 3, 11)
	hP.Add(10, 4, 12)
	load.Add(2, 1, 3) // v2 = v1.f3
	p.Solve(context.Background(), []*Rule{
		NewRule(T(vP, "x", "h2"), T(load, "x", "y", "f"), T(vP, "y", "h"), T(hP, "h", "f", "h2")),
	}, 0)
	if !vP.Has(2, 11) {
		t.Fatal("load rule failed to derive vP(2,11)")
	}
	if vP.Has(2, 12) {
		t.Fatal("load rule over-derived vP(2,12) (field insensitivity!)")
	}
}

func TestUnsafeNegationPanics(t *testing.T) {
	p := NewProgram()
	d := p.Domain("N", 4)
	a := p.Relation("a", d.At(0))
	b := p.Relation("b", d.At(0))
	defer func() {
		if recover() == nil {
			t.Fatal("unsafe negation did not panic")
		}
	}()
	NewRule(T(a, "x"), N(b, "x"))
}

func TestDomainMismatchPanics(t *testing.T) {
	p := NewProgram()
	d1 := p.Domain("A", 4)
	d2 := p.Domain("B", 4)
	a := p.Relation("a", d1.At(0))
	b := p.Relation("b", d2.At(0))
	defer func() {
		if recover() == nil {
			t.Fatal("cross-domain variable did not panic")
		}
	}()
	NewRule(T(a, "x"), T(b, "x"))
}

func TestHeadConstant(t *testing.T) {
	p := NewProgram()
	d := p.Domain("N", 8)
	a := p.Relation("a", d.At(0))
	out := p.Relation("out", d.At(0), d.At(1))
	a.Add(5)
	// out(x, 7) :- a(x).
	p.Solve(context.Background(), []*Rule{
		NewRule(T(out, "x", Wildcard).Bind(1, 7), T(a, "x")),
	}, 0)
	if !out.Has(5, 7) || out.Count() != 1 {
		t.Fatalf("head constant failed: %v", out.Tuples())
	}
}

func TestRelationRedeclare(t *testing.T) {
	p := NewProgram()
	d := p.Domain("N", 8)
	r1 := p.Relation("r", d.At(0))
	r2 := p.Relation("r", d.At(0))
	if r1 != r2 {
		t.Fatal("same-schema redeclare returned distinct relation")
	}
	if p.Lookup("r") != r1 {
		t.Fatal("Lookup mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting redeclare did not panic")
		}
	}()
	p.Relation("r", d.At(1))
}

func TestSolveRoundCount(t *testing.T) {
	p := NewProgram()
	d := p.Domain("N", 64)
	edge := p.Relation("edge", d.At(0), d.At(1))
	path := p.Relation("path", d.At(0), d.At(1))
	for i := uint64(0); i < 40; i++ {
		edge.Add(i, i+1)
	}
	rules := []*Rule{
		NewRule(T(path, "x", "y"), T(edge, "x", "y")),
		// Quadratic rule converges in O(log n) rounds.
		NewRule(T(path, "x", "z"), T(path, "x", "y"), T(path, "y", "z")),
	}
	rounds, _ := p.Solve(context.Background(), rules, 100)
	if rounds > 10 {
		t.Fatalf("doubling closure took %d rounds, expected <= 10", rounds)
	}
	if path.Count() != 41*40/2 {
		t.Fatalf("path count = %d, want %d", path.Count(), 41*40/2)
	}
}

func TestCountManyFreeVariables(t *testing.T) {
	// A 16-bit domain allocates its instance batches (schema + scratch)
	// in one interleaved block of well over 64 variables, so Count on a
	// single-column relation divides SatCount by 2^free with free > 64
	// — exercising the exact power-of-two scaling.
	p := NewProgram()
	d := p.Domain("A", 1<<16)
	r := p.Relation("r", d.At(0))
	r.Add(0)
	r.Add(12345)
	r.Add(65535)
	if free := p.M.NumVars() - 16; free <= 64 {
		t.Fatalf("expected more than 64 free variables, got %d", free)
	}
	if got := r.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
}
