package datalog

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/trace"
)

// chainProgram builds a linear chain edge(0,1)..edge(n-1,n) with the
// usual transitive-closure rules — the closure needs ~n rounds, which
// makes round cutoffs easy to provoke.
func chainProgram(n uint64) (*Program, []*Rule, *Relation) {
	p := NewProgram()
	d := p.Domain("N", n+1)
	edge := p.Relation("edge", d.At(0), d.At(1))
	path := p.Relation("path", d.At(0), d.At(1))
	for i := uint64(0); i < n; i++ {
		edge.Add(i, i+1)
	}
	rules := []*Rule{
		NewRule(T(path, "x", "y"), T(edge, "x", "y")),
		NewRule(T(path, "x", "z"), T(path, "x", "y"), T(edge, "y", "z")),
	}
	return p, rules, path
}

func TestSolveSemiNaiveMaxRoundsReportsNonConvergence(t *testing.T) {
	p, rules, path := chainProgram(30)
	tracer := trace.New()
	ctx := trace.WithTracer(context.Background(), tracer)

	rounds, fixpoint := p.SolveSemiNaive(ctx, rules, 3)
	if fixpoint {
		t.Fatal("3-round cutoff on a 30-chain reported fixpoint")
	}
	if rounds != 3 {
		t.Fatalf("rounds = %d, want 3 (the cutoff)", rounds)
	}
	if full := uint64(31 * 30 / 2); path.Count() >= full {
		t.Fatalf("cut-off closure already complete (%d tuples)", path.Count())
	}
	sum := tracer.Summary()
	if sum["max_rounds_exceeded"].Count != 1 {
		t.Fatalf("max_rounds_exceeded events = %d, want 1", sum["max_rounds_exceeded"].Count)
	}

	// Resuming with no limit converges from the under-approximation.
	rounds, fixpoint = p.SolveSemiNaive(context.Background(), rules, 0)
	if !fixpoint {
		t.Fatalf("unlimited resume did not reach fixpoint (%d rounds)", rounds)
	}
	if full := uint64(31 * 30 / 2); path.Count() != full {
		t.Fatalf("closure count = %d, want %d", path.Count(), full)
	}
}

func TestSolveMaxRoundsReportsNonConvergence(t *testing.T) {
	p, rules, _ := chainProgram(20)
	tracer := trace.New()
	ctx := trace.WithTracer(context.Background(), tracer)

	rounds, fixpoint := p.Solve(ctx, rules, 2)
	if fixpoint {
		t.Fatal("2-round cutoff on a 20-chain reported fixpoint")
	}
	if rounds != 2 {
		t.Fatalf("rounds = %d, want 2", rounds)
	}
	if tracer.Summary()["max_rounds_exceeded"].Count != 1 {
		t.Fatal("naive cutoff did not emit a max_rounds_exceeded event")
	}

	if _, fixpoint = p.Solve(context.Background(), rules, 0); !fixpoint {
		t.Fatal("unlimited naive resume did not reach fixpoint")
	}
}

func TestSolveSemiNaiveEmitsRuleSpans(t *testing.T) {
	p, rules, _ := chainProgram(8)
	tracer := trace.New()
	ctx := trace.WithTracer(context.Background(), tracer)
	rounds, fixpoint := p.SolveSemiNaive(ctx, rules, 0)
	if !fixpoint {
		t.Fatal("chain closure did not converge")
	}

	sum := tracer.Summary()
	if sum["datalog.seminaive"].Count != 1 {
		t.Fatalf("seminaive spans = %d, want 1", sum["datalog.seminaive"].Count)
	}
	if got := sum["round"].Count; got != uint64(rounds) {
		t.Fatalf("round spans = %d, want %d", got, rounds)
	}
	// Every body relation name reaches the span label: the recursive
	// rule runs once per delta round after round 0.
	if got := sum["rule:path:-path,edge"].Count; got < 2 {
		t.Fatalf("recursive rule spans = %d, want >= 2", got)
	}
	if got := sum["rule:path:-edge"].Count; got != 1 {
		t.Fatalf("non-recursive rule spans = %d, want 1 (round 0 only)", got)
	}

	// The per-rule spans carry the delta-evaluation attributes.
	var buf bytes.Buffer
	if err := tracer.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sawDelta := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec struct {
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if rec.Name != "rule:path:-path,edge" {
			continue
		}
		if _, ok := rec.Attrs["delta_tuples"]; !ok {
			continue
		}
		if rec.Attrs["delta_rel"] != "path" {
			t.Fatalf("delta_rel = %v, want path", rec.Attrs["delta_rel"])
		}
		if _, ok := rec.Attrs["new_tuples"]; !ok {
			t.Fatal("rule span lacks new_tuples")
		}
		sawDelta = true
	}
	if !sawDelta {
		t.Fatal("no rule span carried delta_tuples")
	}
}

// TestTracingOffAddsZeroAllocs pins the tracing-off contract at the
// datalog layer: the exact span operations the solvers execute per
// solve, per round, and per rule — against a context with no tracer —
// must not allocate. (Tuple counting is additionally guarded by
// span-nil checks, so it never runs untraced.)
func TestTracingOffAddsZeroAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		_, solve := trace.StartSpan(ctx, "datalog.seminaive")
		if solve != nil {
			solve.Attrs(trace.Int("rules", 2))
		}
		roundSp := solve.Child("round")
		ruleSp := roundSp.Child("rule:path:-path,edge")
		if ruleSp != nil {
			ruleSp.End(trace.Uint64("new_tuples", 0))
		}
		if roundSp != nil {
			roundSp.End(trace.Int("round", 1))
		}
		solve.Event("max_rounds_exceeded", trace.Int("max_rounds", 1))
		solve.End(trace.Int("rounds", 1), trace.Bool("fixpoint", true))
	})
	if allocs != 0 {
		t.Fatalf("tracing-off span path allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkSolveSemiNaiveTracing compares a full solve with tracing
// off and on; the off case asserts zero allocations beyond the
// untraced baseline (measured as a delta against itself via the
// instrumentation-free span path, see TestTracingOffAddsZeroAllocs).
func BenchmarkSolveSemiNaiveTracing(b *testing.B) {
	run := func(b *testing.B, traced bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, rules, _ := chainProgram(24)
			ctx := context.Background()
			if traced {
				ctx = trace.WithTracer(ctx, trace.New())
			}
			if _, fixpoint := p.SolveSemiNaive(ctx, rules, 0); !fixpoint {
				b.Fatal("no fixpoint")
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}
