package datalog

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bdd"
)

// Relation is a set of tuples over the physical domain instances of its
// schema, stored as a BDD.
type Relation struct {
	p     *Program
	Name  string
	attrs []Attr
	node  bdd.Node
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Attrs returns a copy of the schema.
func (r *Relation) Attrs() []Attr { return append([]Attr(nil), r.attrs...) }

// BDD returns the backing BDD node.
func (r *Relation) BDD() bdd.Node { return r.node }

// SetBDD replaces the relation's contents with the given BDD. The
// caller is responsible for the node ranging only over the relation's
// instances and legal domain values.
func (r *Relation) SetBDD(n bdd.Node) { r.node = n }

// Clear removes all tuples.
func (r *Relation) Clear() { r.node = bdd.False }

// IsEmpty reports whether the relation has no tuples.
func (r *Relation) IsEmpty() bool { return r.node == bdd.False }

func (r *Relation) tupleBDD(vals []uint64) bdd.Node {
	if len(vals) != len(r.attrs) {
		panic(fmt.Sprintf("datalog: %s arity %d, got %d values", r.Name, len(r.attrs), len(vals)))
	}
	n := bdd.True
	for i, v := range vals {
		inst := r.attrs[i].Dom.Instance(r.attrs[i].Inst)
		n = r.p.M.And(n, inst.Eq(v))
	}
	return n
}

// Add inserts one tuple. It reports whether the tuple was new.
func (r *Relation) Add(vals ...uint64) bool {
	t := r.tupleBDD(vals)
	merged := r.p.M.Or(r.node, t)
	if merged == r.node {
		return false
	}
	r.node = merged
	return true
}

// Remove deletes one tuple if present.
func (r *Relation) Remove(vals ...uint64) {
	r.node = r.p.M.Diff(r.node, r.tupleBDD(vals))
}

// Has reports whether the tuple is present.
func (r *Relation) Has(vals ...uint64) bool {
	t := r.tupleBDD(vals)
	return r.p.M.And(r.node, t) == t
}

// UnionWith adds every tuple of other (same schema required). It
// reports whether r changed.
func (r *Relation) UnionWith(other *Relation) bool {
	r.mustMatchSchema(other)
	merged := r.p.M.Or(r.node, other.node)
	if merged == r.node {
		return false
	}
	r.node = merged
	return true
}

// DifferenceWith removes every tuple of other (same schema required).
func (r *Relation) DifferenceWith(other *Relation) {
	r.mustMatchSchema(other)
	r.node = r.p.M.Diff(r.node, other.node)
}

// IntersectWith keeps only tuples also in other (same schema required).
func (r *Relation) IntersectWith(other *Relation) {
	r.mustMatchSchema(other)
	r.node = r.p.M.And(r.node, other.node)
}

func (r *Relation) mustMatchSchema(other *Relation) {
	if len(r.attrs) != len(other.attrs) {
		panic(fmt.Sprintf("datalog: schema mismatch %s/%s", r.Name, other.Name))
	}
	for i := range r.attrs {
		if r.attrs[i] != other.attrs[i] {
			panic(fmt.Sprintf("datalog: schema mismatch %s/%s at attr %d", r.Name, other.Name, i))
		}
	}
}

// Count returns the number of tuples.
func (r *Relation) Count() uint64 {
	return r.p.countTuples(r.node, r.attrs)
}

// countTuples counts the tuples of a BDD node ranging over the given
// schema — Relation.Count, but usable on intermediate nodes too (the
// trace layer counts semi-naive deltas this way). SatCount walks
// memoized subgraphs without touching the manager's shared op caches or
// creating nodes, so counting is invisible to reported BDD statistics.
func (p *Program) countTuples(n bdd.Node, attrs []Attr) uint64 {
	if n == bdd.False {
		return 0
	}
	bits := 0
	for _, a := range attrs {
		bits += len(a.Dom.Instance(a.Inst).Vars())
	}
	total := p.M.SatCount(n)
	// SatCount ranges over every allocated variable; divide out the
	// unconstrained ones. Ldexp scales by an exact power of two, so the
	// division stays precise even past 64 free variables.
	free := p.M.NumVars() - bits
	return uint64(math.Round(math.Ldexp(total, -free)))
}

// Each enumerates tuples in an unspecified order. Return false from fn
// to stop early. The tuple slice is reused across calls.
func (r *Relation) Each(fn func(tuple []uint64) bool) {
	if r.node == bdd.False {
		return
	}
	insts := make([]*bdd.Domain, len(r.attrs))
	var vars []int
	for i, a := range r.attrs {
		insts[i] = a.Dom.Instance(a.Inst)
		vars = append(vars, insts[i].Vars()...)
	}
	sort.Ints(vars)
	tuple := make([]uint64, len(r.attrs))
	seen := make(map[string]bool)
	key := make([]byte, 0, len(r.attrs)*8)
	r.p.M.AllSat(r.node, vars, func(a []bool) bool {
		for i, inst := range insts {
			tuple[i] = inst.Decode(vars, a)
		}
		// AllSat can repeat a projection when the node constrains
		// variables outside vars (never for well-formed relations) or
		// enumerate legal duplicates via unconstrained bits; dedupe.
		key = key[:0]
		for _, v := range tuple {
			for s := 0; s < 64; s += 8 {
				key = append(key, byte(v>>s))
			}
		}
		k := string(key)
		if seen[k] {
			return true
		}
		seen[k] = true
		return fn(tuple)
	})
}

// Tuples returns all tuples as a slice (for tests and reports).
func (r *Relation) Tuples() [][]uint64 {
	var out [][]uint64
	r.Each(func(t []uint64) bool {
		out = append(out, append([]uint64(nil), t...))
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// renameKey identifies one (src instance → dst instance) rename; the
// apparatus below is deterministic per key, so the program caches it.
type renameKey struct{ src, dst *bdd.Domain }

// renameOps is the cached constraint apparatus of one rename: the
// src==dst equality BDD and the src quantification cube. BDD nodes are
// stable indices — GC safe points pin these entries (lifecycle.go) and
// reordering rewrites nodes in place — so the cache never needs
// invalidation.
type renameOps struct{ eq, cube bdd.Node }

// renameInstance moves one column of n from physical instance src to
// dst using a constraint-based rename (robust against any variable
// order): result = exists src. (n AND src==dst). The equality and cube
// BDDs are built once per (src, dst) pair and reused — rule evaluation
// renames every atom column on every derive call, so rebuilding them
// each time dominated rule setup cost.
func (p *Program) renameInstance(n bdd.Node, src, dst *bdd.Domain) bdd.Node {
	if src == dst {
		return n
	}
	key := renameKey{src, dst}
	ops, ok := p.renames[key]
	if !ok {
		ops = renameOps{eq: src.EqDomain(dst), cube: src.Cube()}
		p.renames[key] = ops
	}
	return p.M.AndExists(n, ops.eq, ops.cube)
}
