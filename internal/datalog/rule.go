package datalog

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/trace"
)

// Wildcard is the anonymous variable: the attribute is quantified away.
const Wildcard = "_"

// Term is one atom of a rule: a relation applied to variables. Vars
// must have one entry per relation attribute; Wildcard entries match
// anything. Neg marks a negated body atom; every variable of a negated
// atom must also appear in a positive atom of the same rule (safe
// stratified negation — the solver does not re-derive negated
// relations, so callers must fully compute them first).
type Term struct {
	Rel    *Relation
	Vars   []string
	Neg    bool
	consts map[int]uint64
}

// T builds a positive atom.
func T(rel *Relation, vars ...string) Term { return Term{Rel: rel, Vars: vars} }

// N builds a negated atom.
func N(rel *Relation, vars ...string) Term { return Term{Rel: rel, Vars: vars, Neg: true} }

// Bind constrains the atom's i-th argument to a constant value and
// returns the modified term. The argument's Vars entry should be
// Wildcard unless the value should additionally bind a variable.
func (t Term) Bind(i int, value uint64) Term {
	nc := make(map[int]uint64, len(t.consts)+1)
	for k, v := range t.consts {
		nc[k] = v
	}
	nc[i] = value
	t.consts = nc
	return t
}

// Rule is a Horn clause Head :- Body. The head must be positive.
type Rule struct {
	Head Term
	Body []Term
	// name is the Datalog-style rendering, computed once for trace
	// span labels.
	name string
}

// NewRule builds a rule and validates variable/domain consistency and
// negation safety.
func NewRule(head Term, body ...Term) *Rule {
	r := &Rule{Head: head, Body: body}
	r.validate()
	var sb strings.Builder
	sb.WriteString(r.Head.Rel.Name)
	sb.WriteString(":-")
	for i, t := range r.Body {
		if i > 0 {
			sb.WriteByte(',')
		}
		if t.Neg {
			sb.WriteByte('!')
		}
		sb.WriteString(t.Rel.Name)
	}
	r.name = sb.String()
	return r
}

// Name renders the rule as head:-body relation names (negated atoms
// prefixed with !) — the label its fixpoint spans carry.
func (r *Rule) Name() string { return r.name }

func (r *Rule) validate() {
	if r.Head.Neg {
		panic("datalog: negated head")
	}
	varDom := make(map[string]*LogicalDomain)
	check := func(t Term) {
		if len(t.Vars) != t.Rel.Arity() {
			panic(fmt.Sprintf("datalog: atom %s has %d vars, relation arity %d",
				t.Rel.Name, len(t.Vars), t.Rel.Arity()))
		}
		for i, v := range t.Vars {
			if v == Wildcard {
				continue
			}
			d := t.Rel.attrs[i].Dom
			if prev, ok := varDom[v]; ok && prev != d {
				panic(fmt.Sprintf("datalog: variable %s used with domains %s and %s", v, prev.Name, d.Name))
			}
			varDom[v] = d
		}
		for i := range t.consts {
			if i < 0 || i >= t.Rel.Arity() {
				panic(fmt.Sprintf("datalog: constant bound to argument %d of %s (arity %d)", i, t.Rel.Name, t.Rel.Arity()))
			}
		}
	}
	positive := make(map[string]bool)
	for _, t := range r.Body {
		check(t)
		if !t.Neg {
			for _, v := range t.Vars {
				if v != Wildcard {
					positive[v] = true
				}
			}
		}
	}
	check(r.Head)
	for _, t := range r.Body {
		if !t.Neg {
			continue
		}
		for _, v := range t.Vars {
			if v != Wildcard && !positive[v] {
				panic(fmt.Sprintf("datalog: unsafe negation: variable %s of %s not bound positively", v, t.Rel.Name))
			}
		}
	}
	for _, v := range r.Head.Vars {
		if v != Wildcard && !positive[v] {
			panic(fmt.Sprintf("datalog: head variable %s not bound in body", v))
		}
	}
}

// evalEnv assigns every rule variable a private "evaluation" instance
// of its logical domain, disjoint from all relation schema instances.
type evalEnv struct {
	p     *Program
	insts map[string]*bdd.Domain
	next  map[*LogicalDomain]int
}

func newEvalEnv(p *Program) *evalEnv {
	return &evalEnv{p: p, insts: make(map[string]*bdd.Domain), next: make(map[*LogicalDomain]int)}
}

// evalScratch returns the program's reusable evaluation environment,
// reset for a fresh derivation. derive runs on the single-threaded
// manager, so one scratch env per program suffices; reusing it avoids
// two map allocations per rule evaluation inside solver fixpoints.
func (p *Program) evalScratch() *evalEnv {
	if p.env == nil {
		p.env = newEvalEnv(p)
		return p.env
	}
	clear(p.env.insts)
	clear(p.env.next)
	return p.env
}

func (e *evalEnv) instance(v string, d *LogicalDomain) *bdd.Domain {
	if inst, ok := e.insts[v]; ok {
		return inst
	}
	inst := d.scratchInstance(e.next[d])
	e.next[d]++
	e.insts[v] = inst
	return inst
}

// atomBDD renames one atom's relation contents from its schema
// instances onto the rule's evaluation instances, applying constant
// bindings and quantifying wildcards. override, when non-nil, replaces
// the relation's contents (semi-naive evaluation passes deltas).
func (r *Rule) atomBDD(env *evalEnv, t Term, override *bdd.Node) bdd.Node {
	m := env.p.M
	n := t.Rel.node
	if override != nil {
		n = *override
	}
	quantify := bdd.True
	for i, v := range t.Vars {
		inst := t.Rel.attrs[i].Dom.Instance(t.Rel.attrs[i].Inst)
		if c, ok := t.consts[i]; ok {
			n = m.And(n, inst.Eq(c))
		}
		if v == Wildcard {
			quantify = m.And(quantify, inst.Cube())
			continue
		}
		target := env.instance(v, t.Rel.attrs[i].Dom)
		n = env.p.renameInstance(n, inst, target)
	}
	if quantify != bdd.True {
		n = m.Exists(n, quantify)
	}
	return n
}

// Apply evaluates the rule once against current relation contents and
// merges derived tuples into the head. It reports whether the head
// changed.
func (p *Program) Apply(r *Rule) bool {
	derived := p.derive(r, -1, bdd.False)
	merged := p.M.Or(r.Head.Rel.node, derived)
	if merged == r.Head.Rel.node {
		return false
	}
	r.Head.Rel.node = merged
	return true
}

// derive evaluates the rule body and returns the derived tuples over
// the head schema, without merging them. When deltaIdx >= 0, the
// positive body atom at that index reads delta instead of its
// relation's full contents (semi-naive evaluation).
func (p *Program) derive(r *Rule, deltaIdx int, delta bdd.Node) bdd.Node {
	m := p.M
	env := p.evalScratch()
	acc := bdd.True
	for i, t := range r.Body {
		if t.Neg {
			continue
		}
		var override *bdd.Node
		if i == deltaIdx {
			override = &delta
		}
		acc = m.And(acc, r.atomBDD(env, t, override))
		if acc == bdd.False {
			return bdd.False
		}
		p.deriveSafePoint(acc, delta)
	}
	for _, t := range r.Body {
		if !t.Neg {
			continue
		}
		acc = m.Diff(acc, r.atomBDD(env, t, nil))
		if acc == bdd.False {
			return bdd.False
		}
		p.deriveSafePoint(acc)
	}
	// Project onto head variables and move them to the head schema:
	// exists(all eval insts). acc AND (evalInst(v_j) == headAttr_j).
	head := r.Head
	constrain := bdd.True
	for i, v := range head.Vars {
		attrInst := head.Rel.attrs[i].Dom.Instance(head.Rel.attrs[i].Inst)
		if c, ok := head.consts[i]; ok {
			constrain = m.And(constrain, attrInst.Eq(c))
			continue
		}
		if v == Wildcard {
			panic(fmt.Sprintf("datalog: wildcard in head of %s without constant binding", head.Rel.Name))
		}
		constrain = m.And(constrain, env.insts[v].EqDomain(attrInst))
		p.deriveSafePoint(acc, constrain)
	}
	// Build the quantification cube in sorted-variable order: map
	// iteration order would vary the AND association run to run, which
	// perturbs the kernel's cache/node counters (and thus reports)
	// without changing the result.
	vars := make([]string, 0, len(env.insts))
	for v := range env.insts {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	cube := bdd.True
	for _, v := range vars {
		cube = m.And(cube, env.insts[v].Cube())
	}
	p.deriveSafePoint(acc, constrain, cube)
	return m.AndExists(acc, constrain, cube)
}

// SolveSemiNaive runs the rules to fixpoint with semi-naive
// (differential) evaluation, as bddbddb does: after the first round, a
// rule whose body reads relations derived by the rule set is only
// re-evaluated against the tuples that are NEW since its last
// evaluation, once per recursive atom. Non-recursive rules run exactly
// once. Negated atoms must belong to an earlier stratum (they are read
// in full and must not be heads in the same rule set — enforced).
//
// It returns the number of rounds and whether a fixpoint was reached:
// fixpoint is false exactly when maxRounds (>0) cut the iteration off
// early, in which case the relations hold a sound under-approximation
// of the fixpoint — callers must not treat it as converged. The cutoff
// contract — shared verbatim with Solve and pointer's solver — is "run
// at most maxRounds rounds": exactly maxRounds rounds execute when the
// cap bites, the returned round count equals the cap, and a run that
// quiesces within the cap still reports fixpoint — even at exactly the
// cap (TestSolverCutoffBoundary pins all three boundaries).
//
// When ctx carries a trace.Tracer the solve becomes a span with one
// child span per round and, inside each round, one child per rule
// evaluation carrying the delta relation and new-tuple count (the
// per-rule timing bddbddb printed with -v). Counting tuples only
// happens while tracing: the tracing-off path adds zero work and zero
// allocations.
func (p *Program) SolveSemiNaive(ctx context.Context, rules []*Rule, maxRounds int) (int, bool) {
	m := p.M
	derivedBy := make(map[*Relation]bool)
	for _, r := range rules {
		derivedBy[r.Head.Rel] = true
	}
	for _, r := range rules {
		for _, t := range r.Body {
			if t.Neg && derivedBy[t.Rel] {
				panic(fmt.Sprintf("datalog: negated relation %s derived in the same stratum", t.Rel.Name))
			}
		}
	}
	_, solve := trace.StartSpan(ctx, "datalog.seminaive")
	if solve != nil {
		solve.Attrs(trace.Int("rules", len(rules)))
	}
	// Round 0: evaluate every rule in full; the union of everything
	// derived (plus pre-seeded tuples, which count as new) is the
	// first delta.
	delta := make(map[*Relation]bdd.Node)
	for rel := range derivedBy {
		delta[rel] = rel.node
	}
	rounds := 1
	roundSp := solve.Child("round")
	nodes0 := 0
	if solve != nil {
		nodes0 = m.NumNodes()
	}
	// Register the delta maps as roots for mid-derivation safe points;
	// the maps are read through the registration on every collection,
	// so in-round updates are covered.
	p.fixpointRoots = append(p.fixpointRoots[:0], delta)
	defer func() { p.fixpointRoots = nil }()
	for _, r := range rules {
		ruleSp := roundSp.Child("rule:" + r.Name())
		d := p.derive(r, -1, bdd.False)
		newTuples := m.Diff(d, r.Head.Rel.node)
		if newTuples != bdd.False {
			r.Head.Rel.node = m.Or(r.Head.Rel.node, newTuples)
			delta[r.Head.Rel] = m.Or(delta[r.Head.Rel], newTuples)
		}
		if ruleSp != nil {
			ruleSp.End(trace.Uint64("new_tuples", p.countTuples(newTuples, r.Head.Rel.attrs)))
		}
		// Between rules only relations and the deltas are live; the
		// rule's join intermediates are garbage, so sweep under pressure
		// before the next rule piles its own on top.
		p.collectMidRound(delta)
	}
	if roundSp != nil {
		p.endRoundSpan(roundSp, rounds, delta, nodes0)
	}
	p.collectAfterRound(delta)
	for {
		// Quiesce?
		anyDelta := false
		for _, d := range delta {
			if d != bdd.False {
				anyDelta = true
			}
		}
		if !anyDelta {
			solve.End(trace.Int("rounds", rounds), trace.Bool("fixpoint", true))
			return rounds, true
		}
		// Cutoff semantics, shared with Solve and pointer.Result.solve:
		// run at most maxRounds rounds. `rounds` counts completed
		// rounds here, so the check mirrors the solvers' post-round
		// `rounds >= maxRounds` test exactly (pinned by
		// TestSolverCutoffBoundary).
		if maxRounds > 0 && rounds >= maxRounds {
			solve.Event("max_rounds_exceeded", trace.Int("max_rounds", maxRounds))
			solve.End(trace.Int("rounds", rounds), trace.Bool("fixpoint", false))
			return rounds, false
		}
		rounds++
		roundSp = solve.Child("round")
		if solve != nil {
			nodes0 = m.NumNodes()
		}
		next := make(map[*Relation]bdd.Node)
		for rel := range derivedBy {
			next[rel] = bdd.False
		}
		p.fixpointRoots = append(p.fixpointRoots[:0], delta, next)
		for _, r := range rules {
			for i, t := range r.Body {
				if t.Neg || !derivedBy[t.Rel] {
					continue
				}
				d := delta[t.Rel]
				if d == bdd.False {
					continue
				}
				ruleSp := roundSp.Child("rule:" + r.Name())
				derivedNow := p.derive(r, i, d)
				newTuples := m.Diff(derivedNow, r.Head.Rel.node)
				if newTuples != bdd.False {
					r.Head.Rel.node = m.Or(r.Head.Rel.node, newTuples)
					next[r.Head.Rel] = m.Or(next[r.Head.Rel], newTuples)
				}
				if ruleSp != nil {
					ruleSp.End(
						trace.Str("delta_rel", t.Rel.Name),
						trace.Uint64("delta_tuples", p.countTuples(d, t.Rel.attrs)),
						trace.Uint64("new_tuples", p.countTuples(newTuples, r.Head.Rel.attrs)))
				}
				// Safe point between delta applications: live state is
				// the relations, the round's input deltas, and the
				// next-round deltas built so far.
				p.collectMidRound(delta, next)
			}
		}
		delta = next
		if roundSp != nil {
			p.endRoundSpan(roundSp, rounds, delta, nodes0)
		}
		// Round boundary: the previous round's deltas were replaced
		// above, so pressure-triggered GC can sweep them now.
		p.collectAfterRound(delta)
	}
}

// endRoundSpan finishes one fixpoint round's span with the delta
// tuple total and BDD node growth — only called while tracing.
func (p *Program) endRoundSpan(sp *trace.Span, round int, delta map[*Relation]bdd.Node, nodesBefore int) {
	var tuples uint64
	for rel, d := range delta {
		if d != bdd.False {
			tuples += p.countTuples(d, rel.attrs)
		}
	}
	sp.End(
		trace.Int("round", round),
		trace.Uint64("delta_tuples", tuples),
		trace.Int("bdd_nodes", p.M.NumNodes()),
		trace.Int("bdd_nodes_delta", p.M.NumNodes()-nodesBefore))
}

// Solve runs the rules to a global fixpoint using naive iteration (a
// round applies every rule once; rounds repeat while anything changed).
// It returns the number of rounds and whether a fixpoint was reached
// (false exactly when maxRounds > 0 cut the iteration off early; 0
// means no limit). The cutoff runs at most maxRounds rounds — the
// contract SolveSemiNaive documents. Tracing mirrors SolveSemiNaive: a
// span per solve, per round, and per changed-rule application.
func (p *Program) Solve(ctx context.Context, rules []*Rule, maxRounds int) (int, bool) {
	_, solve := trace.StartSpan(ctx, "datalog.solve")
	if solve != nil {
		solve.Attrs(trace.Int("rules", len(rules)))
	}
	rounds := 0
	for {
		rounds++
		roundSp := solve.Child("round")
		nodes0 := 0
		if solve != nil {
			nodes0 = p.M.NumNodes()
		}
		changed := false
		changedRules := 0
		for _, r := range rules {
			ruleSp := roundSp.Child("rule:" + r.Name())
			ruleChanged := p.Apply(r)
			if ruleChanged {
				changed = true
				changedRules++
			}
			if ruleSp != nil {
				ruleSp.End(
					trace.Bool("changed", ruleChanged),
					trace.Uint64("head_tuples", r.Head.Rel.Count()))
			}
			// Between naive rule applications only relations are live.
			p.CollectIfPressured()
		}
		if roundSp != nil {
			roundSp.End(
				trace.Int("round", rounds),
				trace.Int("changed_rules", changedRules),
				trace.Int("bdd_nodes", p.M.NumNodes()),
				trace.Int("bdd_nodes_delta", p.M.NumNodes()-nodes0))
		}
		p.CollectIfPressured()
		if !changed {
			solve.End(trace.Int("rounds", rounds), trace.Bool("fixpoint", true))
			return rounds, true
		}
		if maxRounds > 0 && rounds >= maxRounds {
			solve.Event("max_rounds_exceeded", trace.Int("max_rounds", maxRounds))
			solve.End(trace.Int("rounds", rounds), trace.Bool("fixpoint", false))
			return rounds, false
		}
	}
}
