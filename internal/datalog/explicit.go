package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements an explicit tuple-store evaluation engine over
// the same Program schema and Rule values the BDD engine solves. It
// exists for why-provenance: during semi-naive evaluation it records,
// per derived tuple, one witness — the rule that first produced it plus
// the ground premise facts that fired — which the core layer walks into
// explanation trees. The BDD engine cannot cheaply answer "why is this
// tuple in the relation"; this engine trades the kernel's sharing for
// exactly that question. Results are identical to the BDD engine on the
// same rules and base facts (TestExplicitMatchesBDD pins this).

// Fact is one ground atom: a relation name applied to constant
// arguments. Neg marks an absence premise — the witness used the fact
// NOT holding (stratified negation). WildArg in an argument position of
// a negated fact means the absence was checked for every value of that
// position.
type Fact struct {
	Rel  string
	Args []uint64
	Neg  bool
}

// WildArg is the argument placeholder for a wildcard position of a
// negated premise fact.
const WildArg = ^uint64(0)

// String renders the fact Datalog-style: rel(a,b) or !rel(a,b).
func (f Fact) String() string {
	var sb strings.Builder
	if f.Neg {
		sb.WriteByte('!')
	}
	sb.WriteString(f.Rel)
	sb.WriteByte('(')
	for i, a := range f.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		if a == WildArg {
			sb.WriteByte('_')
		} else {
			fmt.Fprintf(&sb, "%d", a)
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// Witness records how a derived tuple was first produced: the rule's
// Name() and the ground body atoms, in rule-body order (positive atoms
// first as written, then negated atoms as written).
type Witness struct {
	Rule     string
	Premises []Fact
}

// factKey identifies one tuple of one relation for witness lookup.
type factKey struct {
	rel  *Relation
	args string
}

func encodeArgs(vals []uint64) string {
	b := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(v>>s))
		}
	}
	return string(b)
}

// store holds one relation's tuples: a membership index plus the
// insertion-order slice evaluation iterates (deterministic as long as
// facts are Added in a deterministic order, which every loader in this
// repo guarantees).
type store struct {
	index map[string]bool
	rows  [][]uint64
}

func (s *store) has(key string) bool { return s.index[key] }

func (s *store) add(key string, vals []uint64) bool {
	if s.index == nil {
		s.index = make(map[string]bool)
	}
	if s.index[key] {
		return false
	}
	s.index[key] = true
	s.rows = append(s.rows, append([]uint64(nil), vals...))
	return true
}

// Explicit is the tuple-store engine. It shares a Program's relation
// identities and rule values but keeps its own contents: the Program's
// BDD state is never read or written. Zero-value fields are not usable;
// construct with NewExplicit.
type Explicit struct {
	p       *Program
	stores  map[*Relation]*store
	witness map[factKey]*Witness
	// Rounds accumulates fixpoint rounds across Solve calls, mirroring
	// the BDD solvers' round accounting.
	Rounds int
}

// NewExplicit returns an empty engine over the program's schema.
func NewExplicit(p *Program) *Explicit {
	return &Explicit{
		p:       p,
		stores:  make(map[*Relation]*store),
		witness: make(map[factKey]*Witness),
	}
}

func (e *Explicit) storeOf(r *Relation) *store {
	s := e.stores[r]
	if s == nil {
		s = &store{}
		e.stores[r] = s
	}
	return s
}

// Add inserts one base fact (no witness: base facts are their own
// explanation). It reports whether the tuple was new.
func (e *Explicit) Add(r *Relation, vals ...uint64) bool {
	if len(vals) != r.Arity() {
		panic(fmt.Sprintf("datalog: %s arity %d, got %d values", r.Name, r.Arity(), len(vals)))
	}
	return e.storeOf(r).add(encodeArgs(vals), vals)
}

// Has reports whether the tuple is present.
func (e *Explicit) Has(r *Relation, vals ...uint64) bool {
	return e.storeOf(r).has(encodeArgs(vals))
}

// Count returns the number of tuples in r.
func (e *Explicit) Count(r *Relation) int { return len(e.storeOf(r).rows) }

// Tuples returns r's tuples sorted lexicographically (the order
// Relation.Tuples uses, for differential tests).
func (e *Explicit) Tuples(r *Relation) [][]uint64 {
	rows := e.storeOf(r).rows
	out := make([][]uint64, len(rows))
	for i, row := range rows {
		out[i] = append([]uint64(nil), row...)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// WitnessOf returns the recorded witness for a derived tuple. Base
// facts (and absent tuples) have none: ok is false and the caller
// treats the fact as a leaf.
func (e *Explicit) WitnessOf(r *Relation, vals ...uint64) (*Witness, bool) {
	w, ok := e.witness[factKey{r, encodeArgs(vals)}]
	return w, ok
}

// matchRow checks one stored row against an atom's constant bindings
// and the current variable environment, extending env for newly bound
// variables. It returns the variables it bound (for backtracking), or
// ok=false if the row does not match.
func matchRow(t Term, row []uint64, env map[string]uint64) (bound []string, ok bool) {
	for i, v := range t.Vars {
		if c, has := t.consts[i]; has && row[i] != c {
			for _, b := range bound {
				delete(env, b)
			}
			return nil, false
		}
		if v == Wildcard {
			continue
		}
		if val, has := env[v]; has {
			if val != row[i] {
				for _, b := range bound {
					delete(env, b)
				}
				return nil, false
			}
			continue
		}
		env[v] = row[i]
		bound = append(bound, v)
	}
	return bound, true
}

// groundArgs resolves an atom's arguments under env: constants, then
// bound variables; wildcard positions become WildArg.
func groundArgs(t Term, env map[string]uint64) []uint64 {
	args := make([]uint64, len(t.Vars))
	for i, v := range t.Vars {
		if c, has := t.consts[i]; has {
			args[i] = c
			continue
		}
		if v == Wildcard {
			args[i] = WildArg
			continue
		}
		val, has := env[v]
		if !has {
			panic(fmt.Sprintf("datalog: unbound variable %s in %s", v, t.Rel.Name))
		}
		args[i] = val
	}
	return args
}

// absent reports whether no stored tuple of t.Rel matches the ground
// pattern (WildArg positions match anything).
func (e *Explicit) absent(t Term, pattern []uint64) bool {
	s := e.storeOf(t.Rel)
	wild := false
	for _, a := range pattern {
		if a == WildArg {
			wild = true
			break
		}
	}
	if !wild {
		return !s.has(encodeArgs(pattern))
	}
	for _, row := range s.rows {
		match := true
		for i, a := range pattern {
			if a != WildArg && row[i] != a {
				match = false
				break
			}
		}
		if match {
			return false
		}
	}
	return true
}

// evalRule joins the rule body against current contents and calls emit
// for every derived head tuple with the ground premises that produced
// it. When deltaIdx >= 0, the positive atom at that body index reads
// deltaRows instead of its relation's contents (semi-naive evaluation).
// emit may add tuples to the head relation; rows slices are snapshotted
// per atom before iteration so in-flight growth is not re-joined within
// the same evaluation (matching the BDD engine, which evaluates against
// a fixed node per derive call).
func (e *Explicit) evalRule(r *Rule, deltaIdx int, deltaRows [][]uint64, emit func(vals []uint64, premises []Fact)) {
	var positives []int
	for i, t := range r.Body {
		if !t.Neg {
			positives = append(positives, i)
		}
	}
	// Snapshot each positive atom's row source.
	sources := make([][][]uint64, len(positives))
	for k, i := range positives {
		if i == deltaIdx {
			sources[k] = deltaRows
		} else {
			rows := e.storeOf(r.Body[i].Rel).rows
			sources[k] = rows[:len(rows):len(rows)]
		}
	}
	env := make(map[string]uint64)
	var rec func(k int)
	rec = func(k int) {
		if k == len(positives) {
			// All positive atoms matched; check negated atoms.
			var negPremises []Fact
			for _, t := range r.Body {
				if !t.Neg {
					continue
				}
				pattern := groundArgs(t, env)
				if !e.absent(t, pattern) {
					return
				}
				negPremises = append(negPremises, Fact{Rel: t.Rel.Name, Args: pattern, Neg: true})
			}
			head := make([]uint64, r.Head.Rel.Arity())
			for i, v := range r.Head.Vars {
				if c, has := r.Head.consts[i]; has {
					head[i] = c
					continue
				}
				if v == Wildcard {
					panic(fmt.Sprintf("datalog: wildcard in head of %s without constant binding", r.Head.Rel.Name))
				}
				head[i] = env[v]
			}
			premises := make([]Fact, 0, len(r.Body))
			for _, i := range positives {
				premises = append(premises, Fact{Rel: r.Body[i].Rel.Name, Args: groundArgs(r.Body[i], env)})
			}
			premises = append(premises, negPremises...)
			emit(head, premises)
			return
		}
		t := r.Body[positives[k]]
		for _, row := range sources[k] {
			bound, ok := matchRow(t, row, env)
			if !ok {
				continue
			}
			rec(k + 1)
			for _, b := range bound {
				delete(env, b)
			}
		}
	}
	rec(0)
}

// merge adds a derived tuple, recording its first witness. It reports
// whether the tuple was new.
func (e *Explicit) merge(rel *Relation, vals []uint64, rule string, premises []Fact) bool {
	key := encodeArgs(vals)
	s := e.storeOf(rel)
	if !s.add(key, vals) {
		return false
	}
	e.witness[factKey{rel, key}] = &Witness{Rule: rule, Premises: premises}
	return true
}

// Apply evaluates the rule once against current contents and merges
// derived tuples into the head, recording witnesses for new tuples. It
// reports whether the head changed.
func (e *Explicit) Apply(r *Rule) bool {
	changed := false
	e.evalRule(r, -1, nil, func(vals []uint64, premises []Fact) {
		if e.merge(r.Head.Rel, vals, r.Name(), premises) {
			changed = true
		}
	})
	return changed
}

// Solve runs the rules to fixpoint with naive iteration, mirroring
// Program.Solve's cutoff contract: at most maxRounds rounds (0 = no
// limit); fixpoint is false exactly when the cap cut iteration off.
func (e *Explicit) Solve(rules []*Rule, maxRounds int) (int, bool) {
	rounds := 0
	for {
		rounds++
		changed := false
		for _, r := range rules {
			if e.Apply(r) {
				changed = true
			}
		}
		if !changed {
			e.Rounds += rounds
			return rounds, true
		}
		if maxRounds > 0 && rounds >= maxRounds {
			e.Rounds += rounds
			return rounds, false
		}
	}
}

// SolveSemiNaive runs the rules to fixpoint with semi-naive evaluation,
// mirroring Program.SolveSemiNaive: round 0 evaluates every rule in
// full (pre-seeded tuples of derived relations count as the first
// delta); later rounds re-evaluate each rule once per recursive
// positive atom against only that atom's new tuples. Negated relations
// must belong to an earlier stratum (enforced). The cutoff contract is
// the BDD solver's: at most maxRounds rounds, fixpoint false exactly
// when the cap bites.
func (e *Explicit) SolveSemiNaive(rules []*Rule, maxRounds int) (int, bool) {
	derivedBy := make(map[*Relation]bool)
	for _, r := range rules {
		derivedBy[r.Head.Rel] = true
	}
	for _, r := range rules {
		for _, t := range r.Body {
			if t.Neg && derivedBy[t.Rel] {
				panic(fmt.Sprintf("datalog: negated relation %s derived in the same stratum", t.Rel.Name))
			}
		}
	}
	delta := make(map[*Relation][][]uint64)
	for rel := range derivedBy {
		rows := e.storeOf(rel).rows
		delta[rel] = rows[:len(rows):len(rows)]
	}
	rounds := 1
	for _, r := range rules {
		e.evalRule(r, -1, nil, func(vals []uint64, premises []Fact) {
			if e.merge(r.Head.Rel, vals, r.Name(), premises) {
				delta[r.Head.Rel] = append(delta[r.Head.Rel], append([]uint64(nil), vals...))
			}
		})
	}
	for {
		anyDelta := false
		for _, d := range delta {
			if len(d) > 0 {
				anyDelta = true
			}
		}
		if !anyDelta {
			e.Rounds += rounds
			return rounds, true
		}
		if maxRounds > 0 && rounds >= maxRounds {
			e.Rounds += rounds
			return rounds, false
		}
		rounds++
		next := make(map[*Relation][][]uint64)
		for rel := range derivedBy {
			next[rel] = nil
		}
		for _, r := range rules {
			for i, t := range r.Body {
				if t.Neg || !derivedBy[t.Rel] {
					continue
				}
				d := delta[t.Rel]
				if len(d) == 0 {
					continue
				}
				e.evalRule(r, i, d, func(vals []uint64, premises []Fact) {
					if e.merge(r.Head.Rel, vals, r.Name(), premises) {
						next[r.Head.Rel] = append(next[r.Head.Rel], append([]uint64(nil), vals...))
					}
				})
			}
		}
		delta = next
	}
}
