// Package trace is a zero-dependency hierarchical tracing layer for
// the RegionWiz pipeline: spans with start/end times, parent links,
// and typed attributes, carried through context.Context, plus instant
// events for point-in-time facts (a BDD table grow, a fixpoint
// cutoff). Finished spans accumulate in a Tracer and export as Chrome
// trace_event JSON (loadable in chrome://tracing or Perfetto) or as
// flat JSONL (export.go).
//
// Tracing off is the fast path: when no Tracer is installed in the
// context, StartSpan returns the context unchanged and a nil *Span,
// and every Span method is a nil-safe no-op. Hot loops should fetch
// the span once and guard attribute computation with a nil check:
//
//	sp := trace.SpanFromContext(ctx)
//	for ... {
//		if sp != nil { // counting tuples is only worth it when traced
//			sp.Event("round", trace.Int("delta", count()))
//		}
//	}
//
// A Tracer is safe for concurrent use: corpus drivers run many
// analyses at once and their spans interleave into one trace, each
// root span on its own lane (Chrome "thread").
package trace

import (
	"context"
	"sync"
	"time"
)

// AttrKind discriminates Attr payloads.
type AttrKind uint8

// Attribute kinds.
const (
	KindInt AttrKind = iota
	KindStr
	KindBool
	KindFloat
)

// Attr is one typed span or event attribute. Construct with Int,
// Int64, Str, Bool, or Float.
type Attr struct {
	Key  string
	Kind AttrKind
	num  int64
	str  string
	f    float64
}

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Kind: KindInt, num: int64(v)} }

// Int64 builds an integer attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, Kind: KindInt, num: v} }

// Uint64 builds an integer attribute (values above MaxInt64 saturate).
func Uint64(key string, v uint64) Attr {
	n := int64(v)
	if n < 0 {
		n = 1<<63 - 1
	}
	return Attr{Key: key, Kind: KindInt, num: n}
}

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Kind: KindStr, str: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	var n int64
	if v {
		n = 1
	}
	return Attr{Key: key, Kind: KindBool, num: n}
}

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Kind: KindFloat, f: v} }

// value returns the attribute payload as a JSON-encodable value.
func (a Attr) value() any {
	switch a.Kind {
	case KindStr:
		return a.str
	case KindBool:
		return a.num != 0
	case KindFloat:
		return a.f
	default:
		return a.num
	}
}

// record is one finished span or instant event.
type record struct {
	id, parent uint64
	lane       uint64
	name       string
	start      time.Duration // offset from the tracer epoch
	dur        time.Duration
	attrs      []Attr
	instant    bool
}

// Tracer collects spans and events for one traced run.
type Tracer struct {
	epoch time.Time
	// now returns the offset from epoch; tests override it for
	// deterministic output.
	now func() time.Duration

	mu       sync.Mutex
	records  []record
	nextID   uint64
	nextLane uint64
}

// New returns an empty Tracer whose clock starts now.
func New() *Tracer {
	t := &Tracer{epoch: time.Now()}
	t.now = func() time.Duration { return time.Since(t.epoch) }
	return t
}

// Span is one live span. The zero of usefulness is nil: every method
// on a nil Span is a no-op, which is how the tracing-off path stays
// free.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	lane   uint64
	name   string
	start  time.Duration
	attrs  []Attr
}

// newSpan allocates a live span under the tracer lock.
func (t *Tracer) newSpan(name string, parent *Span) *Span {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	var parentID, lane uint64
	if parent != nil {
		parentID = parent.id
		lane = parent.lane
	} else {
		t.nextLane++
		lane = t.nextLane
	}
	t.mu.Unlock()
	return &Span{t: t, id: id, parent: parentID, lane: lane, name: name, start: t.now()}
}

// Root starts a parentless span on a fresh lane — the entry point for
// code holding a Tracer but no context (HTTP middleware, drivers).
func (t *Tracer) Root(name string) *Span { return t.newSpan(name, nil) }

// Child starts a sub-span without threading a new context — the cheap
// form for loops that already hold the parent. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(name, s)
}

// Attrs appends attributes to the span (exported when it ends).
// Nil-safe.
func (s *Span) Attrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End finishes the span, recording its duration and any final
// attributes. Nil-safe; calling End twice records the span twice, so
// don't.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	end := s.t.now()
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	s.t.mu.Lock()
	s.t.records = append(s.t.records, record{
		id: s.id, parent: s.parent, lane: s.lane, name: s.name,
		start: s.start, dur: end - s.start, attrs: s.attrs,
	})
	s.t.mu.Unlock()
}

// Event records an instant event on the span's lane (a point-in-time
// fact: a table grow, a cache clear, a fixpoint cutoff). Nil-safe.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	// Copy rather than alias the variadic slice: storing it would make
	// the parameter escape, heap-allocating the args at every call
	// site even when s is nil (tracing off).
	var kept []Attr
	if len(attrs) > 0 {
		kept = append(kept, attrs...)
	}
	s.t.mu.Lock()
	s.t.records = append(s.t.records, record{
		id: 0, parent: s.id, lane: s.lane, name: name,
		start: s.t.now(), attrs: kept, instant: true,
	})
	s.t.mu.Unlock()
}

// --- context plumbing ---

type tracerKey struct{}
type spanKey struct{}

// WithTracer installs a Tracer in the context; spans started under it
// record there.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext returns the installed Tracer, or nil.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// Enabled reports whether the context carries a Tracer.
func Enabled(ctx context.Context) bool { return FromContext(ctx) != nil }

// SpanFromContext returns the current span, or nil — including when a
// Tracer is installed but no span has been started yet.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a span as a child of the context's current span
// (a root span on a fresh lane when there is none) and returns a
// derived context carrying it. Without a Tracer it returns ctx
// unchanged and a nil span, costing nothing.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	sp := t.newSpan(name, SpanFromContext(ctx))
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// ContextWithSpan returns a context whose current span is sp — for
// handing an externally created span (Root, Child) to code that walks
// the context. sp may be nil, in which case ctx is returned unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}
