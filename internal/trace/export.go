package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// SchemaV1 identifies the trace export encodings. Consumers should
// check it before decoding; additive changes keep the v1 name,
// incompatible ones bump it.
const SchemaV1 = "regionwiz/trace/v1"

// chromeDoc is the Chrome trace_event "JSON object format": the event
// array plus metadata keys. chrome://tracing and Perfetto both load
// it; the schema key versions the regionwiz-specific attribute
// conventions.
type chromeDoc struct {
	Schema      string        `json:"schema"`
	TraceEvents []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string `json:"name"`
	// Ph is the event phase: "X" complete (span), "i" instant, "M"
	// metadata.
	Ph string `json:"ph"`
	// Ts and Dur are microseconds from the trace epoch (trace_event's
	// unit; fractional values carry the nanoseconds).
	Ts  float64 `json:"ts"`
	Dur float64 `json:"dur,omitempty"`
	Pid int     `json:"pid"`
	Tid uint64  `json:"tid"`
	// S scopes instant events ("t" = thread).
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// snapshot copies the finished records, ordered by start time then
// insertion, so exports are stable for a quiesced tracer.
func (t *Tracer) snapshot() []record {
	t.mu.Lock()
	recs := make([]record, len(t.records))
	copy(recs, t.records)
	t.mu.Unlock()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].start < recs[j].start })
	return recs
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func argsOf(rec record) map[string]any {
	if len(rec.attrs) == 0 && rec.parent == 0 {
		return nil
	}
	args := make(map[string]any, len(rec.attrs)+1)
	for _, a := range rec.attrs {
		args[a.Key] = a.value()
	}
	if rec.parent != 0 {
		args["parent_span"] = rec.parent
	}
	return args
}

// WriteChromeTrace renders the collected spans and events as a Chrome
// trace_event JSON document. Call it after the traced work has
// finished; live (un-ended) spans are not included.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	doc := chromeDoc{
		Schema: SchemaV1,
		TraceEvents: []chromeEvent{{
			Name: "process_name", Ph: "M", Pid: 1,
			Args: map[string]any{"name": "regionwiz"},
		}},
	}
	for _, rec := range t.snapshot() {
		ev := chromeEvent{
			Name: rec.name,
			Ts:   micros(rec.start),
			Pid:  1,
			Tid:  rec.lane,
			Args: argsOf(rec),
		}
		if rec.instant {
			ev.Ph, ev.S = "i", "t"
		} else {
			ev.Ph, ev.Dur = "X", micros(rec.dur)
			if ev.Args == nil {
				ev.Args = map[string]any{}
			}
			ev.Args["span_id"] = rec.id
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// jsonlRecord is one WriteJSONL line.
type jsonlRecord struct {
	Schema  string         `json:"schema"`
	Type    string         `json:"type"` // "span" or "event"
	Name    string         `json:"name"`
	ID      uint64         `json:"id,omitempty"`
	Parent  uint64         `json:"parent,omitempty"`
	Lane    uint64         `json:"lane"`
	StartNS int64          `json:"start_ns"`
	DurNS   int64          `json:"dur_ns,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// WriteJSONL renders the collected records one JSON object per line —
// the flat form for jq-style processing. Every line carries the
// schema tag.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range t.snapshot() {
		line := jsonlRecord{
			Schema:  SchemaV1,
			Type:    "span",
			Name:    rec.name,
			ID:      rec.id,
			Parent:  rec.parent,
			Lane:    rec.lane,
			StartNS: rec.start.Nanoseconds(),
			DurNS:   rec.dur.Nanoseconds(),
		}
		if rec.instant {
			line.Type = "event"
		}
		if len(rec.attrs) > 0 {
			line.Attrs = make(map[string]any, len(rec.attrs))
			for _, a := range rec.attrs {
				line.Attrs[a.Key] = a.value()
			}
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// SpanTotal aggregates the spans sharing one name.
type SpanTotal struct {
	Count uint64
	Wall  time.Duration
}

// Summary aggregates finished spans by name — the compact per-rule /
// per-phase rollup regionbench embeds in its JSON output. Instant
// events are counted with zero wall time.
func (t *Tracer) Summary() map[string]SpanTotal {
	out := make(map[string]SpanTotal)
	t.mu.Lock()
	for _, rec := range t.records {
		s := out[rec.name]
		s.Count++
		if !rec.instant {
			s.Wall += rec.dur
		}
		out[rec.name] = s
	}
	t.mu.Unlock()
	return out
}

// Len reports how many spans and events have been recorded.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.records)
}

// String summarizes the tracer for debugging.
func (t *Tracer) String() string {
	return fmt.Sprintf("trace.Tracer(%d records)", t.Len())
}
