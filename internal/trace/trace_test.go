package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock steps the tracer clock 1ms per reading, making exports
// deterministic.
func fixedClock(t *Tracer) {
	var tick time.Duration
	t.now = func() time.Duration {
		tick += time.Millisecond
		return tick
	}
}

// TestChromeTraceGolden pins the trace_event JSON schema (versioned
// regionwiz/trace/v1): span nesting, lanes, instant events, typed
// attributes. Regenerate with UPDATE_GOLDEN=1 go test ./internal/trace.
func TestChromeTraceGolden(t *testing.T) {
	tr := New()
	fixedClock(tr)

	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "pipeline")
	ctx2, phase := StartSpan(ctx, "phase:pointer")
	phase.Event("bdd_grow", Int("nodes", 8192), Int("capacity", 16384))
	rule := phase.Child("rule:vP:-assign,vP")
	rule.End(Int64("new_tuples", 17), Str("delta", "vP"))
	phase.End(Int64("alloc_bytes", 4096))
	_ = ctx2
	root.End(Bool("fixpoint", true), Float("score", 0.5))

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// Structural checks independent of the golden bytes.
	var doc struct {
		Schema string           `json:"schema"`
		Events []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.Schema != SchemaV1 {
		t.Errorf("schema = %q, want %q", doc.Schema, SchemaV1)
	}
	for _, ev := range doc.Events {
		for _, key := range []string{"name", "ph", "pid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event %v missing %q", ev, key)
			}
		}
	}
}

func TestJSONLExport(t *testing.T) {
	tr := New()
	fixedClock(tr)
	sp := tr.Root("solve")
	sp.Event("round", Int("n", 1))
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var rec jsonlRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if rec.Schema != SchemaV1 {
			t.Errorf("line schema = %q, want %q", rec.Schema, SchemaV1)
		}
	}
}

func TestSummary(t *testing.T) {
	tr := New()
	fixedClock(tr)
	for i := 0; i < 3; i++ {
		sp := tr.Root("phase:parse")
		sp.End()
	}
	tr.Root("phase:check").End()
	s := tr.Summary()
	if s["phase:parse"].Count != 3 {
		t.Errorf("parse count = %d, want 3", s["phase:parse"].Count)
	}
	if s["phase:parse"].Wall <= 0 {
		t.Errorf("parse wall = %v, want > 0", s["phase:parse"].Wall)
	}
	if s["phase:check"].Count != 1 {
		t.Errorf("check count = %d, want 1", s["phase:check"].Count)
	}
}

// TestTracingOffZeroAllocs asserts the no-Tracer path costs zero
// allocations: the exact call shape the datalog solver and pipeline
// runner use per round must be free when tracing is off.
func TestTracingOffZeroAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, sp := StartSpan(ctx, "datalog.seminaive")
		if sp != nil {
			sp.Event("round", Int("delta", 1))
		}
		child := sp.Child("rule")
		child.End()
		sp.End()
		_ = ctx2
	})
	if allocs != 0 {
		t.Errorf("tracing-off path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestConcurrentSpans exercises the tracer from many goroutines (run
// under -race in CI) and checks the export stays well-formed.
func TestConcurrentSpans(t *testing.T) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	const workers = 16
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx, root := StartSpan(ctx, "worker")
			for i := 0; i < 50; i++ {
				_, sp := StartSpan(wctx, "unit")
				sp.Event("tick", Int("i", i))
				sp.End(Int("i", i))
			}
			root.End()
		}(w)
	}
	wg.Wait()

	if got, want := tr.Len(), workers*(1+2*50); got != want {
		t.Errorf("recorded %d records, want %d", got, want)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Events []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("concurrent trace is not valid JSON: %v", err)
	}
	lanes := map[uint64]bool{}
	for _, ev := range doc.Events {
		if ev.Ph == "M" {
			continue
		}
		lanes[ev.Tid] = true
	}
	if len(lanes) != workers {
		t.Errorf("trace uses %d lanes, want %d (one per concurrent root)", len(lanes), workers)
	}
}

func TestNestingAndLanes(t *testing.T) {
	tr := New()
	fixedClock(tr)
	ctx := WithTracer(context.Background(), tr)
	ctx1, a := StartSpan(ctx, "a")
	_, b := StartSpan(ctx1, "b")
	b.End()
	a.End()
	_, c := StartSpan(ctx, "c")
	c.End()

	recs := tr.snapshot()
	byName := map[string]record{}
	for _, r := range recs {
		byName[r.name] = r
	}
	if byName["b"].parent != byName["a"].id {
		t.Errorf("b.parent = %d, want a.id = %d", byName["b"].parent, byName["a"].id)
	}
	if byName["b"].lane != byName["a"].lane {
		t.Errorf("child lane %d differs from parent lane %d", byName["b"].lane, byName["a"].lane)
	}
	if byName["c"].lane == byName["a"].lane {
		t.Errorf("independent roots share lane %d", byName["c"].lane)
	}
	if byName["c"].parent != 0 {
		t.Errorf("root c has parent %d", byName["c"].parent)
	}
}
