package contexts

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/callgraph"
)

// kState holds the k-CFA tables inside a Numbering. A context is the
// string of the last k call-site instruction IDs on the path from an
// entry ("" at entries). Contexts are numbered densely per function.
type kState struct {
	k int
	// idx maps a function's call string to its dense context index.
	idx map[string]map[string]uint64
	// rep maps a function's context index to a representative call
	// string (the lexicographically smallest when cap-merging folded
	// several strings onto one index).
	rep map[string][]string
}

// NewKCFA computes a k-CFA context numbering: paths that share their
// last k call sites merge into one context. The paper's Section 6.3
// concludes that "reducing calling contexts is an important factor to
// improve scalability" and leaves alternative context sensitivities to
// future work; k-CFA is the classic alternative — context counts are
// bounded by (#call sites)^k regardless of call-path explosion, at
// some precision cost.
//
// The result is a drop-in replacement for Number's output: Count and
// MapContext drive the pointer analysis identically. cap bounds
// per-function context counts (0 = unlimited); overflowing contexts
// merge modulo the cap, as in Number.
func NewKCFA(g *callgraph.Graph, k int, cap uint64) *Numbering {
	n := &Numbering{
		G:      g,
		SCC:    make(map[string]int),
		Count:  make(map[string]uint64),
		Offset: make(map[Edge]uint64),
		Cap:    cap,
		kcfa:   &kState{k: k, idx: make(map[string]map[string]uint64)},
	}
	ks := n.kcfa

	assign := func(fn, cs string) (uint64, bool) {
		m := ks.idx[fn]
		if m == nil {
			m = make(map[string]uint64)
			ks.idx[fn] = m
		}
		if i, ok := m[cs]; ok {
			return i, false
		}
		i := uint64(len(m))
		if cap != 0 && i >= cap {
			// Merge overflow contexts deterministically.
			n.Capped = true
			i = hashString(cs) % cap
			m[cs] = i
			return i, false // count unchanged; treated as existing
		}
		m[cs] = i
		return i, true
	}

	type work struct{ fn, cs string }
	var queue []work
	roots := append([]string{}, g.Entries...)
	roots = append(roots, initFuncNameIfReachable(g)...)
	sort.Strings(roots)
	for _, e := range roots {
		if !g.Reachable[e] {
			continue
		}
		if _, fresh := assign(e, ""); fresh {
			queue = append(queue, work{e, ""})
		}
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		f := g.Prog.Funcs[w.fn]
		if f == nil {
			continue
		}
		for _, in := range f.Instrs {
			for _, callee := range g.Edges[in.ID] {
				if !g.Reachable[callee] {
					continue
				}
				cs := pushCallString(w.cs, in.ID, ks.k)
				if _, fresh := assign(callee, cs); fresh {
					queue = append(queue, work{callee, cs})
				}
			}
		}
	}

	ks.rep = make(map[string][]string)
	for fn, m := range ks.idx {
		count := uint64(0)
		for _, i := range m {
			if i+1 > count {
				count = i + 1
			}
		}
		n.Count[fn] = count
		reps := make([]string, count)
		filled := make([]bool, count)
		// Deterministic representatives: smallest string per index.
		var strsSorted []string
		for s := range m {
			strsSorted = append(strsSorted, s)
		}
		sort.Strings(strsSorted)
		for _, s := range strsSorted {
			i := m[s]
			if !filled[i] {
				filled[i] = true
				reps[i] = s
			}
		}
		ks.rep[fn] = reps
	}
	// Functions reachable but never assigned (possible only through
	// un-walked edges) get one context.
	for _, fn := range g.ReachableFuncs() {
		if n.Count[fn] == 0 {
			n.Count[fn] = 1
		}
	}
	return n
}

func initFuncNameIfReachable(g *callgraph.Graph) []string {
	const name = "__global_init"
	if g.Reachable[name] {
		return []string{name}
	}
	return nil
}

// mapContextKCFA maps a caller context through an edge under k-CFA.
func (n *Numbering) mapContextKCFA(caller string, callerCtx uint64, e Edge) uint64 {
	ks := n.kcfa
	reps := ks.rep[caller]
	if callerCtx >= uint64(len(reps)) {
		return 0
	}
	next := pushCallString(reps[callerCtx], e.Instr, ks.k)
	if i, ok := ks.idx[e.Callee][next]; ok {
		return i
	}
	return 0
}

// pushCallString appends a call site to a call string, keeping the
// last k sites.
func pushCallString(cs string, instr int, k int) string {
	if k <= 0 {
		return ""
	}
	var parts []string
	if cs != "" {
		parts = strings.Split(cs, ",")
	}
	parts = append(parts, strconv.Itoa(instr))
	if len(parts) > k {
		parts = parts[len(parts)-k:]
	}
	return strings.Join(parts, ",")
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
