package contexts

import (
	"sort"
	"strconv"

	"repro/internal/callgraph"
)

// oState holds the origin-sensitivity tables inside a Numbering. A
// context is a single origin token: the call-site instruction ID of
// the nearest enclosing call into an origin function (a function that
// directly allocates a region or object), or "" when no origin call
// is on the path. Tokens are numbered densely per function, exactly
// like k-CFA call strings.
type oState struct {
	// originFns marks the functions whose invocation spawns a fresh
	// origin: calling one from site i switches the callee (and
	// everything below it, until the next origin call) to token i.
	originFns map[string]bool
	idx       map[string]map[string]uint64
	rep       map[string][]string
}

// NewOrigin computes an origin-sensitive context numbering, the
// allocation-site-based policy of origin-go-tools adapted to this IR:
// instead of distinguishing full call paths (cloning) or call-string
// suffixes (k-CFA), contexts are keyed by which origin call site the
// current activation descends from. Functions reached from two
// different region-creating call sites get two contexts; everything
// reached from the same origin merges. Context counts are bounded by
// the number of origin call sites plus one, so the policy scales like
// 1-CFA restricted to allocation structure.
//
// The result is a drop-in replacement for Number's output: Count and
// MapContext drive the pointer analysis identically. cap bounds
// per-function context counts (0 = unlimited); overflowing tokens
// merge modulo the cap, setting Capped, as in Number and NewKCFA.
func NewOrigin(g *callgraph.Graph, cap uint64, originFns map[string]bool) *Numbering {
	n := &Numbering{
		G:      g,
		SCC:    make(map[string]int),
		Count:  make(map[string]uint64),
		Offset: make(map[Edge]uint64),
		Cap:    cap,
		origin: &oState{originFns: originFns, idx: make(map[string]map[string]uint64)},
	}
	os := n.origin

	assign := func(fn, tok string) (uint64, bool) {
		m := os.idx[fn]
		if m == nil {
			m = make(map[string]uint64)
			os.idx[fn] = m
		}
		if i, ok := m[tok]; ok {
			return i, false
		}
		i := uint64(len(m))
		if cap != 0 && i >= cap {
			// Merge overflow tokens deterministically.
			n.Capped = true
			i = hashString(tok) % cap
			m[tok] = i
			return i, false // count unchanged; treated as existing
		}
		m[tok] = i
		return i, true
	}

	type work struct{ fn, tok string }
	var queue []work
	roots := append([]string{}, g.Entries...)
	roots = append(roots, initFuncNameIfReachable(g)...)
	sort.Strings(roots)
	for _, e := range roots {
		if !g.Reachable[e] {
			continue
		}
		if _, fresh := assign(e, ""); fresh {
			queue = append(queue, work{e, ""})
		}
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		f := g.Prog.Funcs[w.fn]
		if f == nil {
			continue
		}
		for _, in := range f.Instrs {
			for _, callee := range g.Edges[in.ID] {
				if !g.Reachable[callee] {
					continue
				}
				tok := w.tok
				if originFns[callee] {
					tok = strconv.Itoa(in.ID)
				}
				if _, fresh := assign(callee, tok); fresh {
					queue = append(queue, work{callee, tok})
				}
			}
		}
	}

	os.rep = make(map[string][]string)
	for fn, m := range os.idx {
		count := uint64(0)
		for _, i := range m {
			if i+1 > count {
				count = i + 1
			}
		}
		n.Count[fn] = count
		reps := make([]string, count)
		filled := make([]bool, count)
		// Deterministic representatives: smallest token per index.
		var toksSorted []string
		for s := range m {
			toksSorted = append(toksSorted, s)
		}
		sort.Strings(toksSorted)
		for _, s := range toksSorted {
			i := m[s]
			if !filled[i] {
				filled[i] = true
				reps[i] = s
			}
		}
		os.rep[fn] = reps
	}
	for _, fn := range g.ReachableFuncs() {
		if n.Count[fn] == 0 {
			n.Count[fn] = 1
		}
	}
	return n
}

// mapContextOrigin maps a caller context through an edge under origin
// sensitivity: calling an origin function spawns the site's token,
// every other call inherits the caller's.
func (n *Numbering) mapContextOrigin(caller string, callerCtx uint64, e Edge) uint64 {
	os := n.origin
	tok := ""
	if reps := os.rep[caller]; callerCtx < uint64(len(reps)) {
		tok = reps[callerCtx]
	}
	if os.originFns[e.Callee] {
		tok = strconv.Itoa(e.Instr)
	}
	if i, ok := os.idx[e.Callee][tok]; ok {
		return i
	}
	return 0
}
