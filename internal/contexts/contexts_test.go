package contexts

import (
	"testing"

	"repro/internal/callgraph"
	"repro/internal/cminor"
	"repro/internal/ir"
)

func number(t *testing.T, src string, cap uint64) *Numbering {
	t.Helper()
	f, errs := cminor.Parse("test.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	info := cminor.Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("check: %v", info.Errors)
	}
	prog := ir.Lower(info, f)
	g := callgraph.Build(prog, "main", nil)
	return Number(g, cap)
}

func TestLinearChain(t *testing.T) {
	n := number(t, `
int c(void) { return 0; }
int b(void) { return c(); }
int a(void) { return b(); }
int main(void) { return a(); }`, 0)
	for _, fn := range []string{"main", "a", "b", "c"} {
		if n.Count[fn] != 1 {
			t.Fatalf("%s has %d contexts, want 1", fn, n.Count[fn])
		}
	}
}

func TestDiamondMultipliesPaths(t *testing.T) {
	// main calls left and right; both call shared. shared has 2 call
	// paths, so 2 contexts.
	n := number(t, `
int shared(void) { return 0; }
int left(void) { return shared(); }
int right(void) { return shared(); }
int main(void) { return left() + right(); }`, 0)
	if n.Count["shared"] != 2 {
		t.Fatalf("shared has %d contexts, want 2", n.Count["shared"])
	}
	if n.Count["left"] != 1 || n.Count["right"] != 1 {
		t.Fatalf("left/right contexts: %d/%d", n.Count["left"], n.Count["right"])
	}
}

func TestPathExplosionIsExponential(t *testing.T) {
	// Each level calls the next twice: 2^k paths at depth k.
	n := number(t, `
int f4(void) { return 0; }
int f3(void) { return f4() + f4(); }
int f2(void) { return f3() + f3(); }
int f1(void) { return f2() + f2(); }
int main(void) { return f1() + f1(); }`, 0)
	want := map[string]uint64{"f1": 2, "f2": 4, "f3": 8, "f4": 16}
	for fn, w := range want {
		if n.Count[fn] != w {
			t.Fatalf("%s has %d contexts, want %d", fn, n.Count[fn], w)
		}
	}
}

func TestDistinctContextsForDistinctPaths(t *testing.T) {
	n := number(t, `
int shared(void) { return 0; }
int left(void) { return shared(); }
int right(void) { return shared(); }
int main(void) { return left() + right(); }`, 0)
	// The two edges into shared must map main's context 0 to two
	// different shared contexts.
	var edges []Edge
	for e := range n.Offset {
		if e.Callee == "shared" {
			edges = append(edges, e)
		}
	}
	if len(edges) != 2 {
		t.Fatalf("%d cross edges into shared, want 2", len(edges))
	}
	c0 := n.MapContext("left", 0, edges[0])
	c1 := n.MapContext("right", 0, edges[1])
	if c0 == c1 {
		t.Fatalf("distinct call paths map to same context %d", c0)
	}
}

func TestRecursionCollapsesToSCC(t *testing.T) {
	n := number(t, `
int odd(int v);
int even(int v) { if (v == 0) return 1; return odd(v - 1); }
int odd(int v) { if (v == 0) return 0; return even(v - 1); }
int main(void) { return even(4); }`, 0)
	if n.SCC["even"] != n.SCC["odd"] {
		t.Fatal("mutually recursive functions in different SCCs")
	}
	if n.Count["even"] != 1 || n.Count["odd"] != 1 {
		t.Fatalf("SCC contexts: even=%d odd=%d, want 1/1", n.Count["even"], n.Count["odd"])
	}
	// Intra-SCC mapping is identity.
	var e Edge
	for _, edge := range n.callEdges("even") {
		if edge.Callee == "odd" {
			e = edge
		}
	}
	if got := n.MapContext("even", 0, e); got != 0 {
		t.Fatalf("intra-SCC context map = %d, want 0", got)
	}
}

func TestContextCap(t *testing.T) {
	n := number(t, `
int f4(void) { return 0; }
int f3(void) { return f4() + f4(); }
int f2(void) { return f3() + f3(); }
int f1(void) { return f2() + f2(); }
int main(void) { return f1() + f1(); }`, 4)
	if !n.Capped {
		t.Fatal("cap not reported")
	}
	for fn, c := range n.Count {
		if c > 4 {
			t.Fatalf("%s has %d contexts beyond cap", fn, c)
		}
	}
	// Mapped contexts stay in range.
	for e := range n.Offset {
		caller := ""
		for fn := range n.Count {
			for _, edge := range n.callEdges(fn) {
				if edge == e {
					caller = fn
				}
			}
		}
		if caller == "" {
			continue
		}
		for ctx := uint64(0); ctx < n.Count[caller]; ctx++ {
			if got := n.MapContext(caller, ctx, e); got >= n.Count[e.Callee] {
				t.Fatalf("mapped context %d out of range for %s (count %d)", got, e.Callee, n.Count[e.Callee])
			}
		}
	}
}

func TestTopologicalOrder(t *testing.T) {
	n := number(t, `
int leaf(void) { return 0; }
int mid(void) { return leaf(); }
int main(void) { return mid(); }`, 0)
	pos := make(map[string]int)
	for i, comp := range n.Order {
		for _, fn := range comp {
			pos[fn] = i
		}
	}
	if !(pos["main"] < pos["mid"] && pos["mid"] < pos["leaf"]) {
		t.Fatalf("order not topological: %v", n.Order)
	}
}

func TestTotals(t *testing.T) {
	n := number(t, `
int shared(void) { return 0; }
int left(void) { return shared(); }
int right(void) { return shared(); }
int main(void) { return left() + right(); }`, 0)
	if n.TotalContexts() != 5 { // main 1 + left 1 + right 1 + shared 2
		t.Fatalf("total contexts = %d, want 5", n.TotalContexts())
	}
	if n.MaxCount() != 2 {
		t.Fatalf("max count = %d, want 2", n.MaxCount())
	}
}
