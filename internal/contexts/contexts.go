// Package contexts implements the cloning-based context numbering of
// Whaley and Lam that the paper adopts (Section 5.2): strongly
// connected components of the call graph are reduced to single nodes,
// a topological order is found, and individual call paths are numbered
// as calling contexts. Each context number of a function represents a
// unique call path from the program entry; the context-sensitive call
// graph cc(c0, i, c1, f) maps a caller context through a call site to
// a callee context.
//
// Real programs produce astronomically many contexts (the paper's svn
// run exceeds 2 billion region pairs); like bddbddb, downstream phases
// store context-indexed relations in BDDs. This package additionally
// supports a context cap: when a function's path count would exceed
// the cap, paths are merged modulo the cap — a sound (merging only)
// degradation the paper's prototype did not need because BuDDy could
// hold the full count.
package contexts

import (
	"repro/internal/callgraph"
	"repro/internal/ir"
)

// Edge identifies one call-graph edge: call instruction i invoking
// callee f (the paper's (i, f) pairs).
type Edge struct {
	Instr  int
	Callee string
}

// Numbering holds per-function context counts and per-edge context
// offsets.
type Numbering struct {
	G *callgraph.Graph

	// SCC maps each reachable function to its component ID; functions
	// in the same component share context numbering.
	SCC map[string]int
	// Order lists component IDs in topological order (callers first).
	Order [][]string
	// DAG is the condensed call graph the numbering was computed over,
	// including the leaf-to-root level schedule the parallel pointer
	// solver consumes. SCC and Order are views of it, kept for
	// compatibility.
	DAG *callgraph.SCCGraph
	// Count is the number of contexts of each reachable function,
	// after capping.
	Count map[string]uint64
	// Offset is the context offset of each cross-component edge.
	Offset map[Edge]uint64
	// Cap is the applied per-function context cap (0 = unlimited).
	Cap uint64
	// Capped reports whether any function hit the cap.
	Capped bool

	// kcfa is non-nil when the numbering was produced by NewKCFA; it
	// switches MapContext to call-string semantics.
	kcfa *kState
	// origin is non-nil when the numbering was produced by NewOrigin;
	// it switches MapContext to origin-token semantics.
	origin *oState
}

// Number computes the context numbering for the reachable part of g.
// cap bounds the per-function context count (0 means unlimited).
func Number(g *callgraph.Graph, cap uint64) *Numbering {
	n := &Numbering{
		G:      g,
		SCC:    make(map[string]int),
		Count:  make(map[string]uint64),
		Offset: make(map[Edge]uint64),
		Cap:    cap,
	}
	funcs := g.ReachableFuncs()
	n.computeSCCs(funcs)
	n.number(funcs)
	return n
}

// callEdges lists fn's resolved call edges in deterministic order.
func (n *Numbering) callEdges(fn string) []Edge {
	f := n.G.Prog.Funcs[fn]
	if f == nil {
		return nil
	}
	var out []Edge
	for _, in := range f.Instrs {
		if in.Op != ir.Call {
			continue
		}
		for _, callee := range n.G.Edges[in.ID] {
			if n.G.Reachable[callee] {
				out = append(out, Edge{Instr: in.ID, Callee: callee})
			}
		}
	}
	return out
}

// computeSCCs condenses the reachable call graph. The Tarjan run
// lives in callgraph.Condense now — one condensation shared by the
// numbering and the parallel solver's DAG schedule — with the same
// traversal order (and so the same component numbering) this package
// used when it owned the algorithm.
func (n *Numbering) computeSCCs(funcs []string) {
	n.DAG = n.G.Condense()
	n.Order = n.DAG.Comps
	for fn, id := range n.DAG.CompOf {
		n.SCC[fn] = id
	}
}

// number assigns context counts and edge offsets in topological order.
func (n *Numbering) number(funcs []string) {
	// Roots: every entry and the synthetic global initializer each
	// have one context.
	roots := map[string]bool{ir.InitFuncName: true}
	for _, e := range n.G.Entries {
		roots[e] = true
	}

	// Incoming cross-component edges per component, in deterministic
	// order (component order of callers, then instruction ID).
	incoming := make(map[int][]Edge)
	edgeCaller := make(map[Edge]string)
	for _, comp := range n.Order {
		for _, fn := range comp {
			for _, e := range n.callEdges(fn) {
				if n.SCC[e.Callee] == n.SCC[fn] {
					continue // intra-component: context passes through
				}
				incoming[n.SCC[e.Callee]] = append(incoming[n.SCC[e.Callee]], e)
				edgeCaller[e] = fn
			}
		}
	}

	for id, comp := range n.Order {
		var count uint64
		for _, fn := range comp {
			if roots[fn] && n.G.Reachable[fn] {
				count++
			}
		}
		for _, e := range incoming[id] {
			n.Offset[e] = count
			callerCount := n.Count[edgeCaller[e]]
			count += callerCount
			if n.Cap != 0 && count >= n.Cap {
				count = n.Cap
				n.Capped = true
			}
		}
		if count == 0 {
			// Reachable only through cycles from a root component that
			// includes it; give it one context as a base.
			count = 1
		}
		for _, fn := range comp {
			n.Count[fn] = count
		}
	}
}

// MapContext maps a caller context through a call edge to the callee
// context — one tuple of the paper's cc relation.
func (n *Numbering) MapContext(caller string, callerCtx uint64, e Edge) uint64 {
	if n.kcfa != nil {
		return n.mapContextKCFA(caller, callerCtx, e)
	}
	if n.origin != nil {
		return n.mapContextOrigin(caller, callerCtx, e)
	}
	if n.SCC[caller] == n.SCC[e.Callee] {
		// Recursive (intra-component) calls reuse the caller context:
		// the standard treatment after SCC reduction.
		return callerCtx % n.Count[e.Callee]
	}
	c := n.Offset[e] + callerCtx
	if cnt := n.Count[e.Callee]; cnt > 0 {
		c %= cnt
	}
	return c
}

// TotalContexts sums context counts over all reachable functions.
func (n *Numbering) TotalContexts() uint64 {
	var total uint64
	for _, c := range n.Count {
		total += c
	}
	return total
}

// MaxCount returns the largest per-function context count.
func (n *Numbering) MaxCount() uint64 {
	var m uint64
	for _, c := range n.Count {
		if c > m {
			m = c
		}
	}
	return m
}
