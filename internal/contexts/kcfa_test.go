package contexts

import (
	"testing"

	"repro/internal/callgraph"
	"repro/internal/cminor"
	"repro/internal/ir"
)

func numberKCFA(t *testing.T, src string, k int, cap uint64) *Numbering {
	t.Helper()
	f, errs := cminor.Parse("test.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	info := cminor.Check(f)
	if len(info.Errors) != 0 {
		t.Fatalf("check: %v", info.Errors)
	}
	prog := ir.Lower(info, f)
	g := callgraph.Build(prog, "main", nil)
	return NewKCFA(g, k, cap)
}

const diamondSrc = `
int shared(void) { return 0; }
int left(void) { return shared(); }
int right(void) { return shared(); }
int main(void) { return left() + right(); }`

func TestKCFA1DistinguishesCallSites(t *testing.T) {
	n := numberKCFA(t, diamondSrc, 1, 0)
	// 1-CFA: shared's contexts are its two immediate call sites.
	if n.Count["shared"] != 2 {
		t.Fatalf("shared has %d contexts under 1-CFA, want 2", n.Count["shared"])
	}
	if n.Count["main"] != 1 {
		t.Fatalf("main has %d contexts", n.Count["main"])
	}
}

func TestKCFAMergesSharedSuffixes(t *testing.T) {
	// Two paths that end in the SAME final call site merge under
	// 1-CFA but stay separate under call-path numbering.
	src := `
int leaf(void) { return 0; }
int mid(void) { return leaf(); }
int a(void) { return mid(); }
int b(void) { return mid(); }
int main(void) { return a() + b(); }`
	k1 := numberKCFA(t, src, 1, 0)
	// leaf is always called from the single site in mid: one context.
	if k1.Count["leaf"] != 1 {
		t.Fatalf("1-CFA leaf contexts = %d, want 1 (suffix merge)", k1.Count["leaf"])
	}
	// Call-path numbering keeps the two paths apart.
	f, _ := cminor.Parse("t.c", src)
	info := cminor.Check(f)
	prog := ir.Lower(info, f)
	g := callgraph.Build(prog, "main", nil)
	cp := Number(g, 0)
	if cp.Count["leaf"] != 2 {
		t.Fatalf("call-path leaf contexts = %d, want 2", cp.Count["leaf"])
	}
	// 2-CFA recovers the distinction.
	k2 := numberKCFA(t, src, 2, 0)
	if k2.Count["leaf"] != 2 {
		t.Fatalf("2-CFA leaf contexts = %d, want 2", k2.Count["leaf"])
	}
}

func TestKCFARecursionTerminates(t *testing.T) {
	n := numberKCFA(t, `
int odd(int v);
int even(int v) { if (v == 0) return 1; return odd(v - 1); }
int odd(int v) { if (v == 0) return 0; return even(v - 1); }
int main(void) { return even(4); }`, 2, 0)
	// Recursive call strings are k-limited, so counts stay finite.
	if n.Count["even"] == 0 || n.Count["even"] > 4 {
		t.Fatalf("even contexts = %d", n.Count["even"])
	}
}

func TestKCFAMapContextConsistent(t *testing.T) {
	n := numberKCFA(t, diamondSrc, 1, 0)
	g := n.G
	// Every mapped context must be in range, and the two edges into
	// shared must map main's context to different callee contexts.
	var edges []Edge
	for _, fn := range []string{"left", "right"} {
		for _, in := range g.Prog.Funcs[fn].Instrs {
			for _, callee := range g.Edges[in.ID] {
				if callee == "shared" {
					edges = append(edges, Edge{Instr: in.ID, Callee: callee})
				}
			}
		}
	}
	if len(edges) != 2 {
		t.Fatalf("%d edges into shared", len(edges))
	}
	c0 := n.MapContext("left", 0, edges[0])
	c1 := n.MapContext("right", 0, edges[1])
	if c0 == c1 {
		t.Fatal("1-CFA merged distinct call sites")
	}
	for _, c := range []uint64{c0, c1} {
		if c >= n.Count["shared"] {
			t.Fatalf("mapped context %d out of range", c)
		}
	}
}

func TestKCFACapMerges(t *testing.T) {
	// Exponential diamond chain; cap forces merging.
	src := `
int f3(void) { return 0; }
int f2(void) { return f3() + f3(); }
int f1(void) { return f2() + f2(); }
int main(void) { return f1() + f1(); }`
	n := numberKCFA(t, src, 3, 2)
	if !n.Capped {
		t.Fatal("cap not reported")
	}
	for fn, c := range n.Count {
		if c > 2 {
			t.Fatalf("%s has %d contexts beyond cap", fn, c)
		}
	}
}

// TestKCFACapOverflowDeterministic pins the overflow merging strategy:
// when a function's context count hits the cap, further call strings
// fold onto existing indices via hashString(cs) % cap — a pure
// function of the call string, independent of discovery order. Two
// independent numberings of the same program must therefore agree on
// every count and every edge mapping, and every mapped context must
// stay below the cap.
func TestKCFACapOverflowDeterministic(t *testing.T) {
	src := `
int f3(void) { return 0; }
int f2(void) { return f3() + f3(); }
int f1(void) { return f2() + f2(); }
int main(void) { return f1() + f1(); }`
	a := numberKCFA(t, src, 3, 2)
	b := numberKCFA(t, src, 3, 2)
	if !a.Capped || !b.Capped {
		t.Fatal("cap overflow not reported")
	}
	if len(a.Count) != len(b.Count) {
		t.Fatalf("count tables differ in size: %d vs %d", len(a.Count), len(b.Count))
	}
	for fn, c := range a.Count {
		if b.Count[fn] != c {
			t.Fatalf("%s: context count %d vs %d across numberings", fn, c, b.Count[fn])
		}
	}
	// Exhaustively map every (caller context, edge) pair through both
	// numberings.
	g := a.G
	for fn := range a.Count {
		f := g.Prog.Funcs[fn]
		if f == nil {
			continue
		}
		for _, in := range f.Instrs {
			for _, callee := range g.Edges[in.ID] {
				e := Edge{Instr: in.ID, Callee: callee}
				for ctx := uint64(0); ctx < a.Count[fn]; ctx++ {
					ca := a.MapContext(fn, ctx, e)
					cb := b.MapContext(fn, ctx, e)
					if ca != cb {
						t.Fatalf("%s ctx %d edge %v: mapped to %d vs %d", fn, ctx, e, ca, cb)
					}
					if ca >= a.Count[callee] {
						t.Fatalf("%s ctx %d edge %v: mapped context %d out of range %d",
							fn, ctx, e, ca, a.Count[callee])
					}
				}
			}
		}
	}
}
