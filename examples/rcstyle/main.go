// Rcstyle: an rcc-like staged compiler on RC regions, showing why the
// analysis needs heap cloning and context sensitivity — the same
// helper creates many region/object instances that must be kept
// distinct per call path — plus the dynamic RC baseline (deferred
// deletion) the paper contrasts with static checking.
//
//	go run ./examples/rcstyle
package main

import (
	"fmt"
	"log"

	regionwiz "repro"
	"repro/regions"
)

// A compiler-shaped program: a per-pass region wrapped by helpers.
// The string case from the paper's rcc study: an AST node keeps a
// pointer to a string owned by an unrelated per-pass string table.
const compilerC = `
typedef struct region_t region_t;
extern region_t *rnew(region_t *parent);
extern void *ralloc(region_t *r);
extern void *rstrdup(region_t *r);
extern void deleteregion(region_t *r);

struct ast_node { struct ast_node *left; struct ast_node *right; char *name; };
typedef struct ast_node ast_node;

region_t * new_pass_region(region_t *parent) { return rnew(parent); }
ast_node * new_node(region_t *r) { return ralloc(r); }

void parse_pass(region_t *unit, region_t *strings_region) {
    region_t *pass;
    ast_node *root;
    ast_node *child;
    char *ident;
    pass = new_pass_region(unit);
    root = new_node(unit);          /* AST outlives the pass       */
    child = new_node(unit);
    root->left = child;             /* safe: same region           */
    ident = rstrdup(strings_region);
    root->name = ident;             /* rcc bug: unrelated regions  */
    deleteregion(pass);
}

int main(void) {
    region_t *unit;
    region_t *strings_region;
    unit = rnew(NULL);
    strings_region = rnew(NULL);
    parse_pass(unit, strings_region);
    deleteregion(strings_region);
    deleteregion(unit);
    return 0;
}
`

func main() {
	a, err := regionwiz.AnalyzeSource(regionwiz.Options{API: regionwiz.RCRegions()},
		map[string]string{"compiler.c": compilerC})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== rcc-style string-sharing bug ==")
	fmt.Print(a.Report)
	if a.Report.Stats.High == 0 {
		log.Fatal("the string case should be high-ranked")
	}

	// The same run without heap cloning merges the two rnew(NULL)
	// instances made through helpers on some corpora; on this one the
	// report survives, but R shrinks — print both to show the knob.
	u, err := regionwiz.AnalyzeSource(regionwiz.Options{
		API:         regionwiz.RCRegions(),
		HeapCloning: regionwiz.Bool(false),
	}, map[string]string{"compiler.c": compilerC})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheap cloning on:  R=%d H=%d\n", a.Report.Stats.R, a.Report.Stats.H)
	fmt.Printf("heap cloning off: R=%d H=%d (instances merged)\n",
		u.Report.Stats.R, u.Report.Stats.H)

	// The dynamic alternative: RC-style deferred deletion keeps the
	// string table alive while the AST still references it — no
	// crash, but the memory is pinned, which is exactly the paper's
	// argument for fixing placements statically.
	fmt.Println("\n== RC runtime baseline ==")
	unit := regions.NewRCRoot()
	strTable := regions.NewRCRoot()
	strTable.AddRef() // root->name keeps a reference into strTable
	if destroyed := strTable.Destroy(); destroyed {
		log.Fatal("RC should defer deletion while referenced")
	}
	fmt.Printf("deleteregion(strings) deferred (refs=%d, deferred deletes=%d): memory pinned\n",
		strTable.Refs(), strTable.DeferredDeletes)
	strTable.DelRef()
	fmt.Printf("last reference dropped: destroyed=%v\n", strTable.Destroyed())
	unit.Destroy()
}
