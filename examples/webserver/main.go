// Webserver: the staged-application scenario from the paper's
// introduction, run on the repro/regions runtime — a server keeps a
// pool per TCP connection and a subpool per HTTP request, allocates
// connection-lifetime data from the parent and request-lifetime data
// from the child, and tears everything down by deleting regions.
//
// The example then shows the two failure modes RegionWiz exists for:
// a dangling reference caught at runtime by regions.Ref, and the same
// mistake caught *statically* by analyzing the equivalent C code.
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"log"

	regionwiz "repro"
	"repro/regions"
)

type connState struct {
	remote string
	served int
}

type request struct {
	path string
	conn regions.Ref[connState]
}

func main() {
	server := regions.NewRoot()

	// One connection, three requests, all cleanly scoped.
	connPool := server.NewChild()
	conn := regions.NewIn[connState](connPool)
	conn.Get().remote = "10.0.0.7"

	for i := 0; i < 3; i++ {
		reqPool := connPool.NewChild()
		req := regions.NewIn[request](reqPool)
		req.Get().path = fmt.Sprintf("/page/%d", i)
		// A request pointing at its connection is the safe direction:
		// reqPool is a subregion of connPool (Figure 2(b)).
		if err := regions.CheckAssign(reqPool, connPool); err != nil {
			log.Fatalf("unexpected hazard: %v", err)
		}
		req.Get().conn = conn
		conn.Get().served++
		fmt.Printf("served %s for %s\n", req.Get().path, req.Get().conn.Get().remote)
		reqPool.Destroy() // request done: all request memory gone
	}
	fmt.Printf("connection served %d requests; alive subpools: %d\n",
		conn.Get().served, connPool.NumChildren())

	// The inconsistent placement: connection-lifetime data allocated
	// in a request pool. CheckAssign flags the hazard up front...
	reqPool := connPool.NewChild()
	if err := regions.CheckAssign(connPool, reqPool); err != nil {
		fmt.Printf("runtime check: %v\n", err)
	}
	// ...and if we ignore it, the Ref catches the dangle at use time.
	leakyConnData := regions.NewIn[connState](reqPool)
	reqPool.Destroy()
	if _, err := leakyConnData.TryGet(); err != nil {
		fmt.Printf("runtime catch: %v\n", err)
	}

	connPool.Destroy()
	server.Destroy()

	// Now the same bug in C, caught before the program ever runs.
	fmt.Println("\n== static analysis of the same mistake ==")
	report, err := regionwiz.Analyze(regionwiz.Options{}, map[string]string{"server.c": serverC})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)
}

// serverC is the C shape of the buggy placement above: the request
// object keeps connection data allocated in the REQUEST's pool, while
// a connection-lifetime table points at it.
const serverC = `
typedef struct apr_pool_t apr_pool_t;
extern long apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void *apr_palloc(apr_pool_t *p, unsigned long size);
extern void apr_pool_destroy(apr_pool_t *p);

struct conn_state { int served; void *last_req; };
struct request { const char *path; };

void handle_request(apr_pool_t *connpool, struct conn_state *cs) {
    apr_pool_t *reqpool;
    struct request *req;
    apr_pool_create(&reqpool, connpool);
    req = apr_palloc(reqpool, sizeof(struct request));
    cs->last_req = req;   /* BUG: connection object keeps request data */
    apr_pool_destroy(reqpool);
}

int main(void) {
    apr_pool_t *server;
    apr_pool_t *connpool;
    struct conn_state *cs;
    apr_pool_create(&server, NULL);
    apr_pool_create(&connpool, server);
    cs = apr_palloc(connpool, sizeof(struct conn_state));
    handle_request(connpool, cs);
    apr_pool_destroy(server);
    return 0;
}
`
