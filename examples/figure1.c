/* Figure 1 of the paper, condensed: a request object allocated in a
 * sibling region keeps a pointer to a connection object in another
 * region, so deleting the connection's region first leaves req->connection
 * dangling. RegionWiz reports this as a HIGH-ranked inconsistency.
 *
 * Used by the README / CI smoke request against regionwizd.
 */
typedef struct region_t region_t;
extern region_t *rnew(region_t *parent);
extern void *ralloc(region_t *r);

struct conn_t { int fd; };
struct req_t { struct conn_t *connection; };

int main(void) {
    region_t *r; region_t *subr;
    struct conn_t *conn; struct req_t *req;
    r = rnew(NULL);
    conn = ralloc(r);
    subr = rnew(NULL);   /* BUG: sibling region, not a subregion of r */
    req = ralloc(subr);
    req->connection = conn;
    return 0;
}
