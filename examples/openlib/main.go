// Openlib: analyzing a library without a main function — the paper's
// Section 8 extension ("we are working on extensions to support
// analysis of open programs such as libraries"). Every exported
// function becomes an analysis root, and each pool parameter denotes a
// symbolic caller-owned region; the Figure 12 Subversion parser bug is
// found without any driver program.
//
//	go run ./examples/openlib
package main

import (
	"fmt"
	"log"

	regionwiz "repro"
)

const librarySource = `
typedef struct apr_pool_t apr_pool_t;
extern long apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void *apr_palloc(apr_pool_t *p, unsigned long size);
extern void *apr_pcalloc(apr_pool_t *p, unsigned long size);

/* The Figure 12 shape: the parser is created in a private subpool. */
struct svn_xml_parser_t { void *xp; };
typedef struct svn_xml_parser_t svn_xml_parser_t;

svn_xml_parser_t * svn_xml_make_parser(apr_pool_t *pool) {
    svn_xml_parser_t *svn_parser;
    apr_pool_t *subpool;
    apr_pool_create(&subpool, pool);
    svn_parser = apr_pcalloc(subpool, sizeof(*svn_parser));
    return svn_parser;
}

/* A client inside the same library stores the parser in a pool-owned
 * object — inconsistent whatever pool the caller passes. */
struct log_runner { svn_xml_parser_t *parser; };
void run_log(apr_pool_t *pool) {
    struct log_runner *loggy;
    loggy = apr_pcalloc(pool, sizeof(*loggy));
    loggy->parser = svn_xml_make_parser(pool);
}

/* A well-behaved API for contrast: allocates in the caller's pool. */
struct cache { void *table; };
struct cache * cache_create(apr_pool_t *pool) {
    struct cache *c;
    c = apr_pcalloc(pool, sizeof(*c));
    c->table = apr_palloc(pool, 64);
    return c;
}
`

func main() {
	a, err := regionwiz.AnalyzeSource(regionwiz.Options{
		Entries: []string{"run_log", "svn_xml_make_parser", "cache_create"},
	}, map[string]string{"libsvn_like.c": librarySource})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== open-program analysis (no main) ==")
	fmt.Print(a.Report)

	if len(a.Report.Warnings) == 0 {
		log.Fatal("expected the Figure 12 bug to be found in library mode")
	}
	// The well-behaved cache_create contributes no warnings: symbolic
	// parameter regions keep caller-owned memory distinct without
	// flagging same-pool placements.
	for _, w := range a.Report.Warnings {
		if w.Cause == "cache_create" {
			log.Fatalf("false positive on the clean API: %s", w.Message)
		}
	}
	fmt.Println("\ncache_create (allocating in the caller's pool) is clean;")
	fmt.Println("svn_xml_make_parser's private subpool is reported, as in Section 6.4.")
}
