// Svnstyle: the paper's Figure 9 case study end to end — the
// Subversion hash-table/iterator inconsistency, its detection, and
// both fixes the paper proposes, verified by re-analysis.
//
//	go run ./examples/svnstyle
package main

import (
	"fmt"
	"log"
	"strings"

	regionwiz "repro"
)

const buggy = `
typedef struct apr_pool_t apr_pool_t;
extern long apr_pool_create(apr_pool_t **newp, apr_pool_t *parent);
extern void *apr_palloc(apr_pool_t *p, unsigned long size);
extern void apr_pool_destroy(apr_pool_t *p);

typedef struct apr_hash_t apr_hash_t;
typedef struct apr_hash_index_t apr_hash_index_t;
struct apr_hash_index_t { apr_hash_t *ht; };
struct apr_hash_t { apr_hash_index_t iterator; int count; };

/* apr/tables/apr_hash.c (Figure 9(c)) */
apr_hash_index_t * apr_hash_first(apr_pool_t *pool, apr_hash_t *ht) {
    apr_hash_index_t *hi;
    if (pool)
        hi = apr_palloc(pool, sizeof(*hi));
    else
        hi = &ht->iterator;
    hi->ht = ht;
    return hi;
}

apr_hash_t * svn_xml_ap_to_hash(apr_pool_t *pool) {
    return apr_palloc(pool, sizeof(struct apr_hash_t));
}

/* libsvn_subr/xml.c (Figure 9(b)) */
void svn_xml_make_open_tag_hash(apr_pool_t *pool, apr_hash_t *ht) {
    apr_hash_index_t *hi;
    for (hi = apr_hash_first(pool, ht); hi; hi = NULL) { }
}

/* libsvn_subr/xml.c (Figure 9(a)) */
void svn_xml_make_open_tag_v(apr_pool_t *pool) {
    apr_pool_t *subpool;
    apr_hash_t *ht;
    apr_pool_create(&subpool, pool);
    ht = svn_xml_ap_to_hash(subpool);
    svn_xml_make_open_tag_hash(pool, ht);
    apr_pool_destroy(subpool);
}

int main(void) {
    apr_pool_t *pool;
    apr_pool_create(&pool, NULL);
    svn_xml_make_open_tag_v(pool);
    return 0;
}
`

func analyze(label, src string) int {
	report, err := regionwiz.Analyze(regionwiz.Options{}, map[string]string{"xml.c": src})
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	fmt.Printf("== %s ==\n%s\n", label, report)
	return len(report.Warnings)
}

func main() {
	n := analyze("Figure 9 as shipped (iterator in parent pool)", buggy)
	if n == 0 {
		log.Fatal("expected the inconsistency to be reported")
	}

	// Fix 1 (the paper): pass subpool to make_open_tag_hash, so the
	// iterator shares the hash table's lifetime.
	fix1 := strings.Replace(buggy,
		"svn_xml_make_open_tag_hash(pool, ht);",
		"svn_xml_make_open_tag_hash(subpool, ht);", 1)
	if analyze("fix 1: pass subpool down", fix1) != 0 {
		log.Fatal("fix 1 should analyze clean")
	}

	// Fix 2 (the paper): pass NULL to apr_hash_first, so the iterator
	// lives intrusively inside the hash table.
	fix2 := strings.Replace(buggy,
		"for (hi = apr_hash_first(pool, ht); hi; hi = NULL) { }",
		"for (hi = apr_hash_first(NULL, ht); hi; hi = NULL) { }", 1)
	if analyze("fix 2: intrusive iterator (NULL pool)", fix2) != 0 {
		log.Fatal("fix 2 should analyze clean")
	}

	fmt.Println("both of the paper's fixes verify clean")
}
