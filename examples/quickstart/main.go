// Quickstart: analyze the paper's Figure 1 connection/request example
// in both its consistent form and a broken variant, and print the
// reports.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	regionwiz "repro"
)

// The consistent Figure 1 program: the request lives in a subregion of
// the connection's region, so req->connection can never dangle.
const consistent = `
typedef struct region_t region_t;
extern region_t *rnew(region_t *parent);
extern void *ralloc(region_t *r);

struct conn_t { int fd; };
struct req_t { struct conn_t *connection; };

int main(void) {
    region_t *r;
    region_t *subr;
    struct conn_t *conn;
    struct req_t *req;

    r = rnew(NULL);                /* connection region            */
    conn = ralloc(r);              /* connection object            */
    subr = rnew(r);                /* request region: subr < r     */
    req = ralloc(subr);            /* request object               */
    req->connection = conn;        /* access: safe, subr <= r      */
    return 0;
}
`

// The broken variant: subr is NOT a subregion of r (it hangs off the
// root), so deleting r first leaves req->connection dangling.
const broken = `
typedef struct region_t region_t;
extern region_t *rnew(region_t *parent);
extern void *ralloc(region_t *r);

struct conn_t { int fd; };
struct req_t { struct conn_t *connection; };

int main(void) {
    region_t *r;
    region_t *subr;
    struct conn_t *conn;
    struct req_t *req;

    r = rnew(NULL);
    conn = ralloc(r);
    subr = rnew(NULL);             /* BUG: sibling, not subregion  */
    req = ralloc(subr);
    req->connection = conn;
    return 0;
}
`

func main() {
	fmt.Println("== consistent Figure 1 program ==")
	report, err := regionwiz.Analyze(regionwiz.Options{}, map[string]string{"fig1.c": consistent})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	fmt.Println("\n== broken variant (sibling regions) ==")
	report, err = regionwiz.Analyze(regionwiz.Options{}, map[string]string{"fig1broken.c": broken})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)
}
