package regionwiz

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// normalizedReportJSON marshals a report with run-dependent cost
// fields (wall times, allocation deltas) zeroed, so two runs of the
// same analysis can be compared byte-for-byte.
func normalizedReportJSON(t *testing.T, r *core.Report) []byte {
	t.Helper()
	r.Stats.Time = 0
	for i := range r.Stats.Phases {
		r.Stats.Phases[i].Time = 0
		r.Stats.Phases[i].AllocBytes = 0
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestParallelCorpusMatchesSerial drives every executable of the
// generated corpus through pipeline.RunCorpus with four workers and
// requires byte-identical reports to serial execution — the
// correctness contract of the parallel corpus driver (run under
// -race in CI, where it also proves the analyses share no state).
func TestParallelCorpusMatchesSerial(t *testing.T) {
	type job struct {
		name    string
		sources map[string]string
	}
	var jobs []job
	for _, spec := range workloads.SmallCorpus() {
		pkg := workloads.Generate(spec, 2008)
		for _, exe := range pkg.Exes {
			jobs = append(jobs, job{exe.Name, pkg.SourcesFor(exe)})
		}
	}
	if len(jobs) < 4 {
		t.Fatalf("only %d workload executables; need >= 4 for a meaningful parallel run", len(jobs))
	}

	serial := make([][]byte, len(jobs))
	for i, j := range jobs {
		a, err := core.AnalyzeSource(core.Options{}, j.sources)
		if err != nil {
			t.Fatalf("serial %s: %v", j.name, err)
		}
		serial[i] = normalizedReportJSON(t, a.Report)
	}

	results := pipeline.RunCorpus(context.Background(), jobs, 4,
		func(ctx context.Context, j job) (*core.Analysis, error) {
			return core.AnalyzeSourceContext(ctx, core.Options{}, j.sources)
		})
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("parallel %s: %v", jobs[i].name, res.Err)
		}
		got := normalizedReportJSON(t, res.Out.Report)
		if !bytes.Equal(got, serial[i]) {
			t.Errorf("%s: parallel report differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				jobs[i].name, serial[i], got)
		}
	}
}

// TestSolverWorkersDeterminism pins the tentpole contract of the
// intra-analysis parallel solve: for every small-corpus executable,
// the canonical report (oracle.CanonicalReport — warnings plus the
// stable stats) is byte-identical at workers 1, 2, and 4 on both
// backends. Sources are split into files so the sharded front end is
// exercised, not just the SCC-scheduled pointer solve. Run under
// -race in CI, this doubles as the data-race proof for the per-shard
// state.
func TestSolverWorkersDeterminism(t *testing.T) {
	for _, spec := range workloads.SmallCorpus() {
		pkg := workloads.Generate(spec, 2008)
		for _, exe := range pkg.Exes {
			sources := pkg.SplitSourcesFor(exe, 4)
			for _, backend := range []core.Backend{core.ExplicitBackend, core.BDDBackend} {
				var want []byte
				for _, workers := range []int{1, 2, 4} {
					opts := core.Options{Solver: core.SolverOptions{
						Workers: workers,
						Backend: backend,
					}}
					a, err := core.AnalyzeSource(opts, sources)
					if err != nil {
						t.Fatalf("%s backend=%d workers=%d: %v", exe.Name, backend, workers, err)
					}
					got := oracle.CanonicalReport(a.Report)
					if workers == 1 {
						want = got
						continue
					}
					if !bytes.Equal(got, want) {
						t.Errorf("%s backend=%d: workers=%d report differs from workers=1:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
							exe.Name, backend, workers, want, workers, got)
					}
				}
			}
		}
	}
}
