package regionwiz

import (
	"context"
	"net/http"

	"repro/internal/service"
)

// AnalyzerConfig sizes an Analyzer's service layer: worker pool,
// admission queue, result cache, and per-request deadline. The zero
// value is ready to use (GOMAXPROCS workers, queue depth 64, 128
// cached results, no deadline).
type AnalyzerConfig = service.Config

// ServiceStats is a snapshot of an Analyzer's counters: cache hits
// and misses, coalesced and overloaded requests, inflight and queued
// gauges, queue waits, and per-phase cost totals.
type ServiceStats = service.Stats

// Result is one served analysis: the full pipeline state, the
// canonical report JSON (byte-identical across identical requests),
// the content-addressed request key, and how the request was served
// (fresh run, cache hit, or coalesced onto an in-flight run).
type Result = service.Result

// DeltaInfo describes how a delta request resolved against its base
// snapshot (Result.Delta; nil on full requests).
type DeltaInfo = service.DeltaInfo

// Analyzer is a reusable, concurrency-safe analysis handle. Unlike
// the one-shot package functions it keeps a content-addressed result
// cache and a bounded worker pool between calls, so repeating an
// analysis over unchanged sources is effectively free and a burst of
// requests degrades into typed overload errors instead of unbounded
// goroutines. Create with New (or NewAnalyzer to size the pool and
// cache), release with Close.
type Analyzer struct {
	opts Options
	svc  *service.Service
}

// New validates the options and returns a reusable Analyzer handle
// with default service sizing.
func New(opts Options) (*Analyzer, error) {
	return NewAnalyzer(opts, AnalyzerConfig{})
}

// NewAnalyzer is New with explicit service sizing.
func NewAnalyzer(opts Options, cfg AnalyzerConfig) (*Analyzer, error) {
	opts = opts.Normalize()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Analyzer{opts: opts, svc: service.New(cfg)}, nil
}

// Analyze analyzes path->content sources with the handle's options
// and returns the report. An identical repeat (same options, same
// sources) is served from the cache without running the pipeline.
func (a *Analyzer) Analyze(ctx context.Context, sources map[string]string) (*Report, error) {
	res, err := a.AnalyzeResult(ctx, sources)
	if err != nil {
		return nil, err
	}
	return res.Analysis.Report, nil
}

// AnalyzeFiles reads the given files from disk and analyzes them as
// one program. The cache key covers file contents, so editing a file
// naturally invalidates its cached results. Duplicate paths (after
// cleaning) are rejected.
func (a *Analyzer) AnalyzeFiles(ctx context.Context, paths ...string) (*Report, error) {
	sources, err := readSourceFiles(paths)
	if err != nil {
		return nil, err
	}
	return a.Analyze(ctx, sources)
}

// AnalyzeResult is Analyze returning the full service Result — the
// pipeline state, the canonical report JSON, and the cached/coalesced
// disposition.
func (a *Analyzer) AnalyzeResult(ctx context.Context, sources map[string]string) (*Result, error) {
	return a.svc.Analyze(ctx, a.opts, sources)
}

// AnalyzeDelta re-analyzes the source set of a previous result — named
// by its Key — with changed paths overwritten or added and removed
// paths deleted, reusing the base run's per-file front end. If the
// base snapshot has been evicted the call fails with an
// ErrSnapshotGone-kind error; retry with AnalyzeResult and the full
// sources. The report is the one the equivalent full request would
// produce, and the result's Key is a valid base for the next delta.
func (a *Analyzer) AnalyzeDelta(ctx context.Context, base string, changed map[string]string, removed []string) (*Result, error) {
	return a.svc.AnalyzeDelta(ctx, a.opts, base, changed, removed)
}

// Options returns the handle's normalized options.
func (a *Analyzer) Options() Options { return a.opts }

// Stats snapshots the handle's service counters.
func (a *Analyzer) Stats() ServiceStats { return a.svc.Stats() }

// Close rejects new requests, fails queued ones with a typed error,
// and waits for running analyses to finish. Idempotent.
func (a *Analyzer) Close() error { return a.svc.Close() }

// Handler exposes the Analyzer's service over HTTP with the
// regionwizd endpoint set (POST /v1/analyze, GET /v1/healthz,
// GET /v1/metrics, GET /v1/stats). HTTP requests carry their own
// options; the handle's options do not apply to them.
func (a *Analyzer) Handler() http.Handler { return service.NewHandler(a.svc) }
