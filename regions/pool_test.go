package regions

import (
	"testing"
	"testing/quick"
)

func TestAllocBasics(t *testing.T) {
	p := NewRoot()
	b := p.Alloc(10)
	if len(b) != 10 {
		t.Fatalf("len = %d", len(b))
	}
	for _, x := range b {
		if x != 0 {
			t.Fatal("allocation not zeroed")
		}
	}
	b2 := p.Alloc(1)
	b[0] = 0xAA
	if b2[0] != 0 {
		t.Fatal("allocations overlap")
	}
	if p.Allocated() < 11 {
		t.Fatalf("accounting: %d", p.Allocated())
	}
}

func TestAllocLarge(t *testing.T) {
	p := NewRoot()
	b := p.Alloc(100000)
	if len(b) != 100000 {
		t.Fatal("large allocation failed")
	}
}

func TestAllocAlignment(t *testing.T) {
	p := NewRoot()
	for i := 1; i < 30; i++ {
		_ = p.Alloc(i)
	}
	if p.Allocated()%8 != 0 {
		t.Fatalf("unaligned accounting %d", p.Allocated())
	}
}

func TestHierarchyDestroyRecursive(t *testing.T) {
	root := NewRoot()
	conn := root.NewChild()
	req1 := conn.NewChild()
	req2 := conn.NewChild()
	if !root.IsAncestorOf(req1) || !conn.IsAncestorOf(req2) {
		t.Fatal("ancestor order wrong")
	}
	if req1.IsAncestorOf(conn) {
		t.Fatal("inverted ancestry")
	}
	conn.Destroy()
	if !req1.Destroyed() || !req2.Destroyed() || !conn.Destroyed() {
		t.Fatal("recursive destroy missed a descendant")
	}
	if root.Destroyed() {
		t.Fatal("parent destroyed with child")
	}
	if root.NumChildren() != 0 {
		t.Fatal("destroyed child not detached")
	}
}

func TestCleanupOrder(t *testing.T) {
	var order []string
	root := NewRoot()
	child := root.NewChild()
	root.CleanupRegister(func() { order = append(order, "root1") })
	root.CleanupRegister(func() { order = append(order, "root2") })
	child.CleanupRegister(func() { order = append(order, "child") })
	root.Destroy()
	// Children torn down first; within a pool, reverse registration.
	want := []string{"child", "root2", "root1"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestClearKeepsPoolUsable(t *testing.T) {
	p := NewRoot()
	c := p.NewChild()
	p.Alloc(100)
	ran := false
	p.CleanupRegister(func() { ran = true })
	p.Clear()
	if !ran {
		t.Fatal("cleanup not run on clear")
	}
	if !c.Destroyed() {
		t.Fatal("clear must destroy children")
	}
	if p.Destroyed() {
		t.Fatal("clear must not destroy the pool")
	}
	if p.Allocated() != 0 {
		t.Fatal("clear did not reset accounting")
	}
	_ = p.Alloc(8) // still usable
}

func TestUseAfterDestroyPanics(t *testing.T) {
	p := NewRoot()
	p.Destroy()
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc on destroyed pool did not panic")
		}
	}()
	p.Alloc(1)
}

func TestDoubleDestroyIsIdempotent(t *testing.T) {
	p := NewRoot()
	c := p.NewChild()
	c.Destroy()
	c.Destroy() // must not panic
	p.Destroy()
}

func TestStrdup(t *testing.T) {
	p := NewRoot()
	b := p.Strdup("hello")
	if string(b) != "hello" {
		t.Fatalf("strdup = %q", b)
	}
}

func TestRefDanglingDetection(t *testing.T) {
	type payload struct{ n int }
	root := NewRoot()
	sub := root.NewChild()
	r := NewIn[payload](sub)
	r.Get().n = 42
	if !r.Valid() {
		t.Fatal("live ref invalid")
	}
	sub.Destroy()
	if r.Valid() {
		t.Fatal("dangling ref still valid")
	}
	if _, err := r.TryGet(); err == nil {
		t.Fatal("TryGet on dangling ref succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Get on dangling ref did not panic")
		}
	}()
	r.Get()
}

func TestCheckAssignMirrorsFigure2(t *testing.T) {
	root := NewRoot()
	r1 := root.NewChild()
	r2 := r1.NewChild()
	sibling := root.NewChild()
	// (a) same region: safe.
	if err := CheckAssign(r1, r1); err != nil {
		t.Fatalf("same region: %v", err)
	}
	// (b) holder in subregion: safe.
	if err := CheckAssign(r2, r1); err != nil {
		t.Fatalf("holder in subregion: %v", err)
	}
	// (c) unrelated: hazard.
	if err := CheckAssign(sibling, r2); err == nil {
		t.Fatal("unrelated regions not flagged")
	}
	// (d) pointee in subregion: hazard.
	if err := CheckAssign(r1, r2); err == nil {
		t.Fatal("inverted lifetime not flagged")
	}
}

func TestRCDeferredDestroy(t *testing.T) {
	rc := NewRCRoot()
	sub := rc.NewChild()
	sub.AddRef()
	if sub.Destroy() {
		t.Fatal("referenced region destroyed immediately")
	}
	if sub.Destroyed() || !sub.DeferredPending() {
		t.Fatal("deferred state wrong")
	}
	if sub.DeferredDeletes != 1 {
		t.Fatalf("DeferredDeletes = %d", sub.DeferredDeletes)
	}
	sub.DelRef()
	if !sub.Destroyed() {
		t.Fatal("region not reclaimed when last ref dropped")
	}
}

func TestRCImmediateDestroyWhenUnreferenced(t *testing.T) {
	rc := NewRCRoot()
	sub := rc.NewChild()
	if !sub.Destroy() {
		t.Fatal("unreferenced region not destroyed immediately")
	}
}

func TestPropertyAllocationsDisjoint(t *testing.T) {
	// Arbitrary allocation sequences yield non-overlapping, zeroed
	// slices.
	f := func(sizes []uint8) bool {
		p := NewRoot()
		var slices [][]byte
		for _, s := range sizes {
			b := p.Alloc(int(s))
			for i := range b {
				if b[i] != 0 {
					return false
				}
				b[i] = 0xFF
			}
			slices = append(slices, b)
		}
		// Re-check earlier slices were not clobbered by later fills:
		// every byte must still be 0xFF.
		for _, b := range slices {
			for _, x := range b {
				if x != 0xFF {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWalk(t *testing.T) {
	root := NewRoot()
	a := root.NewChild()
	a.NewChild()
	root.NewChild()
	count := 0
	root.Walk(func(*Pool) { count++ })
	if count != 4 {
		t.Fatalf("walk visited %d pools, want 4", count)
	}
}

func TestUserdataLifetime(t *testing.T) {
	p := NewRoot()
	p.SetUserdata("config", 42)
	if v, ok := p.Userdata("config"); !ok || v.(int) != 42 {
		t.Fatalf("userdata = %v, %v", v, ok)
	}
	if _, ok := p.Userdata("missing"); ok {
		t.Fatal("missing key found")
	}
	p.Clear()
	if _, ok := p.Userdata("config"); ok {
		t.Fatal("userdata survived Clear")
	}
	p.SetUserdata("again", "x")
	p.Destroy()
	defer func() {
		if recover() == nil {
			t.Fatal("Userdata on destroyed pool did not panic")
		}
	}()
	p.Userdata("again")
}
