// Package regions is a region-based memory management runtime in the
// style of APR pools (the interface of the paper's Figure 6): a
// hierarchy of pools with arena allocation, recursive clearing and
// destruction, and cleanup callbacks. It is the runnable substrate for
// the examples and the dynamic-safety baseline (RC-style deferred
// destruction) that the paper's Section 1/7 contrasts with static
// verification.
//
// Pools are not safe for concurrent use, matching APR; confine each
// pool to one goroutine or synchronize externally (the paper's Section
// 6.4 discusses exactly this design pressure).
package regions

import (
	"errors"
	"fmt"
)

// ErrDestroyed is returned or panicked when a destroyed pool is used.
var ErrDestroyed = errors.New("regions: pool already destroyed")

// Cleanup is a callback run when its pool is cleared or destroyed —
// the apr_pool_cleanup_register mechanism used to tie non-memory
// resources (file descriptors, parser instances) to region lifetimes.
type Cleanup func()

const defaultChunk = 8192

// Pool is one region. The zero value is not usable; create roots with
// NewRoot and children with NewChild.
type Pool struct {
	parent   *Pool
	children []*Pool
	chunks   [][]byte
	cur      []byte
	cleanups []Cleanup
	dead     bool

	allocated int64
	label     string
	userdata  map[string]interface{}
}

// NewRoot creates a top-level pool.
func NewRoot() *Pool { return &Pool{label: "root"} }

// NewChild creates a subregion of p: it will be destroyed no later
// than p (the subregion relation of the paper's Section 2).
func (p *Pool) NewChild() *Pool {
	p.mustLive()
	c := &Pool{parent: p, label: fmt.Sprintf("%s/%d", p.label, len(p.children))}
	p.children = append(p.children, c)
	return c
}

// Parent returns the pool's parent (nil for roots).
func (p *Pool) Parent() *Pool { return p.parent }

// Label returns a diagnostic path-like name.
func (p *Pool) Label() string { return p.label }

// IsAncestorOf reports whether p is an ancestor of (or the same pool
// as) other — the partial order other ⊑ p.
func (p *Pool) IsAncestorOf(other *Pool) bool {
	for x := other; x != nil; x = x.parent {
		if x == p {
			return true
		}
	}
	return false
}

func (p *Pool) mustLive() {
	if p.dead {
		panic(ErrDestroyed)
	}
}

// Alloc returns an n-byte zeroed slice from the pool's arena
// (apr_pcalloc). The memory is reclaimed wholesale on Clear/Destroy —
// do not retain slices past the pool's lifetime.
func (p *Pool) Alloc(n int) []byte {
	p.mustLive()
	if n < 0 {
		panic("regions: negative allocation")
	}
	// Round to 8 bytes, like apr_palloc's alignment.
	rounded := (n + 7) &^ 7
	if len(p.cur) < rounded {
		size := defaultChunk
		if rounded > size {
			size = rounded
		}
		chunk := make([]byte, size)
		p.chunks = append(p.chunks, chunk)
		p.cur = chunk
	}
	out := p.cur[:n:n]
	p.cur = p.cur[rounded:]
	p.allocated += int64(rounded)
	return out
}

// Strdup copies s into the pool's arena (apr_pstrdup).
func (p *Pool) Strdup(s string) []byte {
	b := p.Alloc(len(s))
	copy(b, s)
	return b
}

// CleanupRegister arranges for fn to run when the pool is cleared or
// destroyed. Cleanups run in reverse registration order, children
// first — exactly APR's teardown order.
func (p *Pool) CleanupRegister(fn Cleanup) {
	p.mustLive()
	p.cleanups = append(p.cleanups, fn)
}

// Clear reclaims everything allocated in the pool and destroys its
// children, but keeps the pool itself usable (apr_pool_clear).
func (p *Pool) Clear() {
	p.mustLive()
	for i := len(p.children) - 1; i >= 0; i-- {
		p.children[i].Destroy()
	}
	p.children = nil
	for i := len(p.cleanups) - 1; i >= 0; i-- {
		p.cleanups[i]()
	}
	p.cleanups = nil
	p.chunks = nil
	p.cur = nil
	p.allocated = 0
	p.userdata = nil
}

// Destroy clears the pool, detaches it from its parent, and marks it
// dead; any further use panics with ErrDestroyed (apr_pool_destroy).
func (p *Pool) Destroy() {
	if p.dead {
		return
	}
	p.Clear()
	p.dead = true
	if p.parent != nil && !p.parent.dead {
		kids := p.parent.children
		for i, c := range kids {
			if c == p {
				p.parent.children = append(kids[:i:i], kids[i+1:]...)
				break
			}
		}
	}
}

// Destroyed reports whether the pool has been destroyed.
func (p *Pool) Destroyed() bool { return p.dead }

// Allocated returns the bytes currently held by the pool's arena
// (excluding children).
func (p *Pool) Allocated() int64 { return p.allocated }

// NumChildren returns the number of live child pools.
func (p *Pool) NumChildren() int { return len(p.children) }

// SetUserdata attaches a keyed value to the pool, mirroring
// apr_pool_userdata_set: the association lives exactly as long as the
// pool (cleared on Clear/Destroy).
func (p *Pool) SetUserdata(key string, value interface{}) {
	p.mustLive()
	if p.userdata == nil {
		p.userdata = make(map[string]interface{})
	}
	p.userdata[key] = value
}

// Userdata retrieves a value stored with SetUserdata.
func (p *Pool) Userdata(key string) (interface{}, bool) {
	p.mustLive()
	v, ok := p.userdata[key]
	return v, ok
}

// Walk visits the pool and its descendants depth-first.
func (p *Pool) Walk(fn func(*Pool)) {
	fn(p)
	for _, c := range p.children {
		c.Walk(fn)
	}
}
