package regions

import "fmt"

// Ref is a typed handle to a value whose lifetime is tied to a pool.
// Unlike raw pointers in C regions, a Ref checks at access time that
// its pool is still alive, turning the dangling pointers RegionWiz
// hunts statically into immediate, diagnosable failures at runtime —
// the dynamic-safety point in the design space (the paper's C@/RC
// comparison, Section 7).
type Ref[T any] struct {
	pool *Pool
	v    *T
}

// NewIn allocates a zero T whose lifetime follows the pool.
func NewIn[T any](p *Pool) Ref[T] {
	p.mustLive()
	return Ref[T]{pool: p, v: new(T)}
}

// Pool returns the owning pool.
func (r Ref[T]) Pool() *Pool { return r.pool }

// Valid reports whether the referent is still alive.
func (r Ref[T]) Valid() bool { return r.v != nil && r.pool != nil && !r.pool.dead }

// Get returns the referent, panicking with a descriptive error if the
// owning pool has been destroyed (a caught dangling pointer).
func (r Ref[T]) Get() *T {
	if r.v == nil || r.pool == nil {
		panic(fmt.Errorf("regions: nil ref"))
	}
	if r.pool.dead {
		panic(fmt.Errorf("regions: dangling ref into destroyed pool %s", r.pool.label))
	}
	return r.v
}

// TryGet is Get without the panic.
func (r Ref[T]) TryGet() (*T, error) {
	if r.v == nil || r.pool == nil {
		return nil, fmt.Errorf("regions: nil ref")
	}
	if r.pool.dead {
		return nil, fmt.Errorf("regions: dangling ref into destroyed pool %s: %w", r.pool.label, ErrDestroyed)
	}
	return r.v, nil
}

// CheckAssign validates the paper's Proposition 2.1 for one
// assignment: a holder in pool `from` may safely keep a reference into
// pool `to` only when to is an ancestor of (or equal to) from, i.e.
// from ⊑ to. It returns an error describing the lifetime hazard
// otherwise. This is the runtime analogue of the static non-access
// check; examples use it to demonstrate the consistency rules.
func CheckAssign(from, to *Pool) error {
	if to.IsAncestorOf(from) {
		return nil
	}
	return fmt.Errorf("regions: object in %s must not hold a pointer into %s (no subregion order %s ⊑ %s)",
		from.label, to.label, from.label, to.label)
}
