package regions

// RCPool wraps a Pool with RC-style reference counting (Gay & Aiken's
// RC, the paper's Section 7): deleting a region that is still
// referenced by inter-region pointers from outside defers the actual
// deletion until the count drops to zero. This is the dynamic
// technique the paper contrasts with RegionWiz — it avoids the crash
// but "does not fix bugs generally; objects still reside
// inconsistently in regions, and resources in the regions cannot be
// reclaimed".
type RCPool struct {
	pool     *Pool
	refs     int64
	deferred bool
	// DeferredDeletes counts how many times destruction had to be
	// postponed — the runtime cost signal benchmarks report.
	DeferredDeletes int64
}

// NewRCRoot creates a reference-counted root region.
func NewRCRoot() *RCPool { return &RCPool{pool: NewRoot()} }

// NewChild creates a reference-counted subregion.
func (r *RCPool) NewChild() *RCPool { return &RCPool{pool: r.pool.NewChild()} }

// Pool exposes the underlying arena.
func (r *RCPool) Pool() *Pool { return r.pool }

// AddRef records an inter-region pointer into r from outside (RC's
// write-barrier increment).
func (r *RCPool) AddRef() { r.refs++ }

// DelRef releases one inter-region pointer. If a deletion was
// deferred and this was the last reference, the region is reclaimed
// now.
func (r *RCPool) DelRef() {
	if r.refs > 0 {
		r.refs--
	}
	if r.refs == 0 && r.deferred {
		r.deferred = false
		r.pool.Destroy()
	}
}

// Refs returns the current external reference count.
func (r *RCPool) Refs() int64 { return r.refs }

// Destroy deletes the region unless external references remain, in
// which case the deletion is deferred (and DeferredDeletes
// incremented). It reports whether the region was actually destroyed.
func (r *RCPool) Destroy() bool {
	if r.refs > 0 {
		r.deferred = true
		r.DeferredDeletes++
		return false
	}
	r.pool.Destroy()
	return true
}

// Destroyed reports whether the underlying pool is gone.
func (r *RCPool) Destroyed() bool { return r.pool.Destroyed() }

// DeferredPending reports whether a destruction is waiting on
// references.
func (r *RCPool) DeferredPending() bool { return r.deferred }
