// Package regionwiz finds region lifetime inconsistencies in C
// programs that use region-based memory management, reproducing
// "Conditional Correlation Analysis for Safe Region-based Memory
// Management" (Wang et al., PLDI 2008).
//
// A program using regions must place objects so that a region holding
// pointers into another region is always deleted first. RegionWiz
// verifies this statically: it runs a context-sensitive,
// field-sensitive pointer analysis with heap cloning, extracts the
// subregion, ownership, and access relations, and checks the
// conditional correlation ⟨p⁺, φ⁼, σ̄*⟩ — for every pair of regions
// with no subregion partial order, no object in the first may access
// an object in the second.
//
// Quick start:
//
//	report, err := regionwiz.AnalyzeSource(regionwiz.Options{}, map[string]string{
//	    "server.c": src,
//	})
//	if err != nil { ... }
//	fmt.Print(report)
//
// The analyzer accepts both region interfaces from the paper — RC
// regions (rnew/ralloc) and APR pools (apr_pool_create/apr_palloc) —
// and both can be mixed. See the examples directory for runnable
// scenarios and package repro/regions for a runnable region runtime.
//
// For repeated analysis over evolving sources, the Analyzer handle
// (New) keeps a content-addressed result cache and a bounded worker
// pool between calls; the regionwizd command serves the same engine
// over HTTP.
package regionwiz

import (
	"context"
	"os"
	"path/filepath"

	"repro/internal/callgraph"
	"repro/internal/core"
)

// Options configures an analysis; the zero value is ready to use
// (entry "main", both region APIs, context cap 4096, heap cloning on,
// explicit backend).
type Options = core.Options

// SolverOptions groups the solve-strategy knobs (Options.Solver):
// worker count, fixpoint round bound, backend, and BDD kernel sizing.
type SolverOptions = core.SolverOptions

// Backend selects the relation engine for the inconsistency
// computation.
type Backend = core.Backend

// Backend values.
const (
	// ExplicitBackend solves the pair computation with hash-set
	// relations.
	ExplicitBackend = core.ExplicitBackend
	// BDDBackend stores relations in binary decision diagrams and
	// solves the paper's Datalog rules, as the original prototype did
	// with bddbddb/BuDDy.
	BDDBackend = core.BDDBackend
)

// RegionAPI describes one region-based memory management interface.
type RegionAPI = core.RegionAPI

// APRPools returns the Apache Portable Runtime pools interface
// (the paper's Figure 6).
func APRPools() *RegionAPI { return core.APRPools() }

// RCRegions returns the RC-regions interface (rnew/ralloc).
func RCRegions() *RegionAPI { return core.RCRegions() }

// MergeAPIs combines several interfaces.
func MergeAPIs(apis ...*RegionAPI) *RegionAPI { return core.MergeAPIs(apis...) }

// ImplicitSpec registers a runtime function whose argument is invoked
// implicitly (thread entry points, cleanup callbacks).
type ImplicitSpec = callgraph.ImplicitSpec

// Report is the analysis outcome: ranked warnings plus the
// quantitative stats of the paper's Figure 11.
type Report = core.Report

// Warning is one reported potential dangling pointer.
type Warning = core.Warning

// Stats carries the quantitative columns (analysis time, region and
// object counts, relation sizes, pair counts) plus the per-phase
// pipeline breakdown.
type Stats = core.Stats

// PhaseStat is one pipeline phase's cost: wall time, allocation
// delta, and output-relation sizes.
type PhaseStat = core.PhaseStat

// Analysis exposes the full pipeline state for programmatic consumers
// (region tree, ownership, access edges, the conditional correlation).
type Analysis = core.Analysis

// Bool is a helper for Options.HeapCloning.
func Bool(b bool) *bool { return core.Bool(b) }

// Error is the typed failure every exported entry point returns: a
// kind (parse, resolve, config, overload, internal), the source
// position when known, and the wrapped cause when there is one.
// Branch on it with errors.As, or with errors.Is against a kind-only
// sentinel:
//
//	var aerr *regionwiz.Error
//	if errors.As(err, &aerr) && aerr.Kind == regionwiz.ErrOverload { ... }
//	if errors.Is(err, &regionwiz.Error{Kind: regionwiz.ErrOverload}) { ... }
//
// Message text matches the untyped errors of earlier releases.
type Error = core.Error

// ErrorKind classifies an Error.
type ErrorKind = core.ErrorKind

// Error kinds.
const (
	// ErrInternal is an unexpected analyzer failure, including context
	// cancellation (which stays reachable through errors.Is).
	ErrInternal = core.ErrInternal
	// ErrParse is a front-end (lex/parse/typecheck) rejection.
	ErrParse = core.ErrParse
	// ErrResolve means a named analysis root does not exist.
	ErrResolve = core.ErrResolve
	// ErrConfig is an invalid Options value or request shape.
	ErrConfig = core.ErrConfig
	// ErrOverload is an admission-control rejection from an Analyzer
	// or regionwizd under load.
	ErrOverload = core.ErrOverload
	// ErrSnapshotGone means a delta request named a base snapshot the
	// service no longer holds (evicted or never computed); retrying
	// with full sources succeeds.
	ErrSnapshotGone = core.ErrSnapshotGone
)

// ReportSchemaV1 identifies the report JSON encoding emitted by
// Report.MarshalJSON and the regionwizd /v1/analyze endpoint.
const ReportSchemaV1 = core.ReportSchemaV1

// ExplainSchemaV1 identifies the explanation (why-provenance) JSON
// encoding produced by MarshalExplanations, regionwiz -explain -json,
// and the regionwizd /v1/explain endpoint.
const ExplainSchemaV1 = core.ExplainSchemaV1

// Explainer answers why-provenance queries against one finished
// analysis: build one with Analysis.Explainer, then Explain a 1-based
// warning id or ExplainAll. Runs that recorded provenance
// (Options.Provenance on the explicit backend) answer from recorded
// witnesses; every other run — BDD backend, provenance off — is
// answered by demand-driven replay on the explicit engine, with
// byte-identical explanations.
type Explainer = core.Explainer

// Explanation is one warning's derivation tree, from the reported
// instruction pair back to base facts with source positions.
type Explanation = core.Explanation

// ExplainNode is one node of an explanation tree: a derived fact with
// the rule that fired and its premises, a negated premise with the
// facts justifying the absence, or a base-fact leaf with its source
// position.
type ExplainNode = core.ExplainNode

// MarshalExplanations renders explanations as the versioned JSON
// document (schema "regionwiz/explain/v1") the -explain -json flag and
// /v1/explain emit.
func MarshalExplanations(exps []*Explanation) ([]byte, error) {
	return core.MarshalExplanations(exps)
}

// QuerySchemaV1 identifies the pair-query (demand verdict) JSON
// encoding produced by regionwiz -query and the regionwizd /v1/query
// endpoint.
const QuerySchemaV1 = core.QuerySchemaV1

// PairAnswer is the verdict of one demand-driven pair query: whether
// objects allocated at one site may hold pointers into objects
// allocated at another across regions with no subregion order. The
// verdict agrees with the full analysis for the same site pair.
type PairAnswer = core.PairAnswer

// QueryPairSource answers one pair query over sources without
// computing the full report: the pipeline runs only through
// access-relation extraction, then the access edges between the two
// queried allocation sites ("file:line" or "file:line:col") are
// checked and every witnessing object pair is re-derived on a
// per-query Datalog cone.
func QueryPairSource(ctx context.Context, opts Options, sources map[string]string, srcSite, dstSite string) (*PairAnswer, error) {
	return core.QueryPairSource(ctx, opts, sources, srcSite, dstSite)
}

// QueryPairFiles is QueryPairSource over files read from disk.
func QueryPairFiles(ctx context.Context, opts Options, srcSite, dstSite string, paths ...string) (*PairAnswer, error) {
	sources, err := readSourceFiles(paths)
	if err != nil {
		return nil, err
	}
	return core.QueryPairSource(ctx, opts, sources, srcSite, dstSite)
}

// AnalyzeSource analyzes CMinor/C-subset sources given as
// path -> content pairs and returns the full analysis state.
func AnalyzeSource(opts Options, sources map[string]string) (*Analysis, error) {
	return core.AnalyzeSource(opts, sources)
}

// AnalyzeSourceContext is AnalyzeSource under a context: the pipeline
// checks ctx between phases and aborts with ctx.Err() when it is
// cancelled or past its deadline.
func AnalyzeSourceContext(ctx context.Context, opts Options, sources map[string]string) (*Analysis, error) {
	return core.AnalyzeSourceContext(ctx, opts, sources)
}

// Analyze is AnalyzeSource returning just the report.
func Analyze(opts Options, sources map[string]string) (*Report, error) {
	a, err := core.AnalyzeSource(opts, sources)
	if err != nil {
		return nil, err
	}
	return a.Report, nil
}

// AnalyzeFiles reads the given files from disk and analyzes them as
// one program.
func AnalyzeFiles(opts Options, paths ...string) (*Analysis, error) {
	return AnalyzeFilesContext(context.Background(), opts, paths...)
}

// AnalyzeFilesContext is AnalyzeFiles under a context (see
// AnalyzeSourceContext). Two paths that clean to the same file are an
// ErrConfig error — one source silently overwriting the other never
// is what the caller meant.
func AnalyzeFilesContext(ctx context.Context, opts Options, paths ...string) (*Analysis, error) {
	sources, err := readSourceFiles(paths)
	if err != nil {
		return nil, err
	}
	return core.AnalyzeSourceContext(ctx, opts, sources)
}

// readSourceFiles loads path->content pairs for analysis, rejecting
// paths that collide after filepath.Clean and typing read failures.
func readSourceFiles(paths []string) (map[string]string, error) {
	sources := make(map[string]string, len(paths))
	for _, p := range paths {
		clean := filepath.Clean(p)
		if _, dup := sources[clean]; dup {
			return nil, core.Errf(core.ErrConfig, "", "duplicate source path %q (cleans to %q)", p, clean)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, core.WrapError(core.ErrConfig, err)
		}
		sources[clean] = string(b)
	}
	return sources, nil
}
