package regionwiz

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// TestCorpusRegression pins the full small-corpus outcome through the
// public facade: every executable of every package analyzes without
// error, planted true bugs are found, clean packages stay clean, and
// the Figure 8 totals hold. This is the repository's integration
// regression net — if any pipeline stage drifts, this fails first.
func TestCorpusRegression(t *testing.T) {
	wantHigh := map[string]int{
		"rcc": 1, "apache": 1, "freeswitch": 0,
		"jxta-c": 0, "lklftpd": 2, "subversion": 5,
	}
	wantWarnMin := map[string]int{
		"rcc": 1, "apache": 1, "freeswitch": 1,
		"jxta-c": 0, "lklftpd": 2, "subversion": 8,
	}
	for _, spec := range workloads.SmallCorpus() {
		pkg := workloads.Generate(spec, 2008)
		high, warnings := 0, 0
		for _, exe := range pkg.Exes {
			a, err := core.AnalyzeSource(core.Options{}, pkg.SourcesFor(exe))
			if err != nil {
				t.Fatalf("%s: %v", exe.Name, err)
			}
			high += a.Report.Stats.High
			warnings += len(a.Report.Warnings)
			// Every planted true bug must surface in this executable.
			planted := 0
			for _, plant := range exe.Plants {
				if plant.Pattern.TrueBug() {
					planted++
				}
			}
			if len(a.Report.Warnings) < planted {
				t.Errorf("%s: %d warnings < %d planted true bugs",
					exe.Name, len(a.Report.Warnings), planted)
			}
		}
		if high != wantHigh[spec.Name] {
			t.Errorf("%s: high-ranked = %d, want %d", spec.Name, high, wantHigh[spec.Name])
		}
		if warnings < wantWarnMin[spec.Name] {
			t.Errorf("%s: warnings = %d, want >= %d", spec.Name, warnings, wantWarnMin[spec.Name])
		}
		if spec.Name == "jxta-c" && warnings != 0 {
			t.Errorf("jxta-c must stay clean, got %d warnings", warnings)
		}
	}
}

// TestCorpusBothBackendsAgree runs one executable per package through
// both pair-computation backends and compares warning counts.
func TestCorpusBothBackendsAgree(t *testing.T) {
	for _, spec := range workloads.SmallCorpus() {
		pkg := workloads.Generate(spec, 77)
		exe := pkg.Exes[0]
		exp, err := core.AnalyzeSource(core.Options{Backend: core.ExplicitBackend}, pkg.SourcesFor(exe))
		if err != nil {
			t.Fatalf("%s: %v", exe.Name, err)
		}
		bdd, err := core.AnalyzeSource(core.Options{Backend: core.BDDBackend}, pkg.SourcesFor(exe))
		if err != nil {
			t.Fatalf("%s (bdd): %v", exe.Name, err)
		}
		if len(exp.Report.Warnings) != len(bdd.Report.Warnings) {
			t.Errorf("%s: explicit %d vs bdd %d warnings",
				exe.Name, len(exp.Report.Warnings), len(bdd.Report.Warnings))
		}
	}
}
